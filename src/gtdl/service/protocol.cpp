#include "gtdl/service/protocol.hpp"

#include <cctype>

namespace gtdl::service {

namespace {

// Strict scanner over one request line, mirroring the trace-dump
// reader's restricted dialect (ingest/): flat object, string and
// non-negative integer values only. Hand-rolled on purpose — no JSON
// dependency, and malformed input degrades to one precise error.
class LineScanner {
 public:
  explicit LineScanner(const std::string& line)
      : p_(line.data()), end_(line.data() + line.size()) {}

  bool parse(Request* out, std::string* error) {
    skip_ws();
    if (!consume('{')) return fail(error, "expected '{'");
    skip_ws();
    if (consume('}')) return finish(out, error);
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key, error)) return false;
      skip_ws();
      if (!consume(':')) return fail(error, "expected ':'");
      skip_ws();
      if (!parse_value(key, out, error)) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail(error, "expected ',' or '}'");
    }
    skip_ws();
    if (p_ != end_) return fail(error, "trailing characters after object");
    return finish(out, error);
  }

 private:
  bool finish(Request* out, std::string* error) {
    if (out->op.empty()) return fail(error, "missing \"op\"");
    return true;
  }

  static bool fail(std::string* error, const char* message) {
    if (error != nullptr) *error = message;
    return false;
  }

  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\r' || *p_ == '\n')) {
      ++p_;
    }
  }

  bool consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  bool parse_value(const std::string& key, Request* out, std::string* error) {
    if (p_ == end_) return fail(error, "unexpected end of line");
    if (*p_ == '"') {
      std::string value;
      if (!parse_string(&value, error)) return false;
      if (key == "op") {
        out->op = std::move(value);
      } else if (key == "id") {
        out->id = std::move(value);
      } else if (key == "file") {
        out->files.push_back(std::move(value));
      } else if (key == "path") {
        out->path = std::move(value);
      }
      // Unknown string keys are ignored (forward compatibility).
      return true;
    }
    if (std::isdigit(static_cast<unsigned char>(*p_)) != 0) {
      std::uint64_t value = 0;
      if (!parse_uint(&value, error)) return false;
      const auto set = [&](std::optional<std::uint64_t>& field) {
        field = value;
      };
      if (key == "baseline") set(out->baseline);
      else if (key == "new_push") set(out->new_push);
      else if (key == "dump_gtype") set(out->dump_gtype);
      else if (key == "max_iters") set(out->max_iters);
      else if (key == "unrolls") set(out->unrolls);
      else if (key == "timeout_ms") set(out->timeout_ms);
      else if (key == "budget_steps") set(out->budget_steps);
      else if (key == "budget_mb") set(out->budget_mb);
      else if (key == "id") out->id = std::to_string(value);
      // Unknown integer keys are ignored.
      return true;
    }
    return fail(error,
                "request values must be strings or non-negative integers");
  }

  bool parse_uint(std::uint64_t* out, std::string* error) {
    std::uint64_t value = 0;
    bool any = false;
    while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_)) != 0) {
      const std::uint64_t digit = static_cast<std::uint64_t>(*p_ - '0');
      if (value > (~std::uint64_t{0} - digit) / 10) {
        return fail(error, "integer overflow");
      }
      value = value * 10 + digit;
      ++p_;
      any = true;
    }
    if (!any) return fail(error, "expected digits");
    if (p_ != end_ && (*p_ == '.' || *p_ == 'e' || *p_ == 'E')) {
      return fail(error, "floating-point values are not accepted");
    }
    *out = value;
    return true;
  }

  bool parse_string(std::string* out, std::string* error) {
    if (!consume('"')) return fail(error, "expected '\"'");
    out->clear();
    while (p_ != end_) {
      const char c = *p_++;
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) break;
      const char esc = *p_++;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (end_ - p_ < 4) return fail(error, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail(error, "bad \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            return fail(error, "surrogate escapes are not supported");
          }
          // UTF-8 encode (BMP only, matching the dump reader).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail(error, "unknown escape");
      }
    }
    return fail(error, "unterminated string");
  }

  const char* p_;
  const char* end_;
};

}  // namespace

bool parse_request(const std::string& line, Request* out, std::string* error) {
  *out = Request{};
  return LineScanner(line).parse(out, error);
}

void append_json_string(std::string& out, const std::string& value) {
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  out.push_back('"');
}

}  // namespace gtdl::service
