// fdld wire protocol: newline-delimited JSON over a Unix-domain socket
// (or stdio in --stdio mode).
//
// Each REQUEST is one flat, one-line JSON object — same restricted
// dialect as the trace-dump reader (ingest/): string and non-negative
// integer values only, repeated keys allowed ("file" appears once per
// corpus entry), unknown keys ignored for forward compatibility.
//
//   {"op":"submit","id":"1","file":"a.fut","file":"b.fut","baseline":1}
//
// Ops: submit | reanalyze | stats | snapshot | shutdown | ping.
// submit and reanalyze are deliberately the same operation — both
// consult the warm cache and re-analyze exactly the dirty cone; the two
// spellings exist so client intent reads clearly in logs.
//
// Each RESPONSE is one line of JSON. Responses may nest (per-file report
// objects in an array); only requests are restricted to the flat form.
// See README.md "fdld" and DESIGN.md §S23 for the full surface.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gtdl::service {

struct Request {
  std::string op;          // required
  std::string id;          // optional client correlation id, echoed back
  std::vector<std::string> files;  // repeated "file" keys, in order
  std::string path;        // snapshot target path (op == "snapshot")

  // Per-request analysis option overrides; unset fields inherit the
  // daemon's defaults. All map 1:1 onto CorpusOptions / fdlc flags.
  std::optional<std::uint64_t> baseline;   // 0/1
  std::optional<std::uint64_t> new_push;   // 0/1
  std::optional<std::uint64_t> dump_gtype; // 0/1
  std::optional<std::uint64_t> max_iters;
  std::optional<std::uint64_t> unrolls;
  std::optional<std::uint64_t> timeout_ms;
  std::optional<std::uint64_t> budget_steps;
  std::optional<std::uint64_t> budget_mb;
};

// Parses one request line. Returns false and fills *error on malformed
// input (unterminated string, non-integer number, missing/empty "op").
[[nodiscard]] bool parse_request(const std::string& line, Request* out,
                                 std::string* error);

// Minimal JSON writer for responses: appends correctly escaped members
// to a growing line. The caller brackets objects/arrays.
void append_json_string(std::string& out, const std::string& value);

}  // namespace gtdl::service
