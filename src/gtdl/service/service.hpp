// fdld core: one persistent analysis service multiplexing requests over
// ONE shared Engine, one process-wide interner, and a two-level warm
// cache (DESIGN.md §S23).
//
//   * DEF level — keyed (definition id, options fingerprint), where a
//     definition is one input file. Stores the complete rendered report
//     plus a content fingerprint; an unchanged file replays its report
//     without even recompiling (daemon.cache.hits).
//   * GTYPE level — keyed (interned graph-type id, options fingerprint).
//     Stores the analysis block and exit code, dependency-tagged with
//     the definition ids it was derived from. A changed file erases its
//     def entry AND every gtype entry depending on it — the dirty cone —
//     and nothing else (daemon.cache.invalidated). Distinct paths whose
//     content interns to the same graph type share one entry here, so
//     the second file of an identical pair replays the first's analysis
//     after a cheap compile. (Invalidation is deliberately conservative:
//     every fact derived from a changed definition is dropped, even
//     though gtype entries are content-addressed.)
//
// Only definite verdicts (exit 0/1) are cached. Compile errors (2) are
// cheap to reproduce, and budget-exhausted verdicts (3) depend on the
// requested budget — the options fingerprint covers the budget fields
// precisely so a verdict cached under one budget can never answer a
// request made under another.
//
// Eviction: entries carry a generation-tagged last-use stamp; when the
// byte quota overflows, least-recently-used entries go first
// (daemon.cache.evictions), and the thread-local memo lease pools are
// purged cooperatively (request_memo_pool_purge) so a shrinking daemon
// actually returns memory.

#pragma once

#include <memory>
#include <string>

#include "gtdl/par/corpus.hpp"
#include "gtdl/service/snapshot.hpp"

namespace gtdl::service {

struct ServiceOptions {
  // Shared engine parallelism, fixed for the daemon's lifetime (per-file
  // fan-out and in-file passes both ride it). Per-request overrides are
  // deliberately NOT supported: verdict bytes are --jobs-independent, so
  // a cache keyed without the job count stays correct.
  unsigned jobs = 1;
  // Byte quota for the two-level cache (report text, dependency tags).
  std::size_t cache_quota_bytes = 64u << 20;
  // Defaults for analysis options a request does not override.
  CorpusOptions defaults;
};

class Service {
 public:
  explicit Service(ServiceOptions options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Handles one request line and returns one response line (no trailing
  // newline). Thread-safe: the daemon calls this concurrently from every
  // connection thread. Sets *shutdown on a "shutdown" request (the
  // response line is still returned and should be written first).
  [[nodiscard]] std::string handle_line(const std::string& line,
                                        bool* shutdown);

  // Replays `path` into the process interner, recording the elapsed time
  // in daemon.warm_start.ms. A failed load (missing file, version or
  // checksum mismatch, structural corruption) leaves the interner
  // untouched — the caller logs result.error and proceeds cold.
  SnapshotLoadResult warm_start(const std::string& path);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gtdl::service
