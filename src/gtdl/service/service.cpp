#include "gtdl/service/service.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/intern.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/par/engine.hpp"
#include "gtdl/par/thread_pool.hpp"
#include "gtdl/service/protocol.hpp"
#include "gtdl/support/budget.hpp"
#include "gtdl/support/flat_memo.hpp"

namespace gtdl::service {

namespace {

// All daemon instruments are cold-path (once per request, never inside
// an analysis loop), so they bypass the stats gate with force_add —
// `fdld` stats must be live whether or not --stats was requested.
struct DaemonMetrics {
  obs::Counter& requests;
  obs::Counter& cache_hits;
  obs::Counter& cache_invalidated;
  obs::Counter& cache_evictions;
  obs::Gauge& warm_start_ms;

  static DaemonMetrics& get() {
    static DaemonMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      return new DaemonMetrics{
          reg.counter(obs::MetricDesc{"daemon.requests", "daemon",
                                      "requests",
                                      "requests handled by the fdld service"}),
          reg.counter(obs::MetricDesc{
              "daemon.cache.hits", "daemon", "entries",
              "requests answered from the def- or gtype-level cache"}),
          reg.counter(obs::MetricDesc{
              "daemon.cache.invalidated", "daemon", "entries",
              "cache entries erased because a dependency changed"}),
          reg.counter(obs::MetricDesc{
              "daemon.cache.evictions", "daemon", "entries",
              "cache entries evicted under the byte quota"}),
          reg.gauge(obs::MetricDesc{
              "daemon.warm_start.ms", "daemon", "ms",
              "time spent replaying the --warm-start snapshot"}),
      };
    }();
    return *m;
  }
};

std::uint64_t fnv1a_bytes(const char* data, std::size_t size,
                          std::uint64_t hash = 14695981039346656037ULL) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t fnv1a_u64(std::uint64_t v, std::uint64_t hash) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (v >> (8 * i)) & 0xFF;
    hash *= 1099511628211ULL;
  }
  return hash;
}

// Fingerprint of every CorpusOptions field that can change rendered
// report bytes or the exit code. The budget fields are included on
// purpose: a DF verdict computed under an unlimited budget must never
// answer a request whose tiny budget would have yielded exit 3.
std::uint64_t options_fingerprint(const CorpusOptions& options) {
  std::uint64_t fp = 14695981039346656037ULL;
  fp = fnv1a_u64(options.new_push ? 1 : 0, fp);
  fp = fnv1a_u64(options.max_iters, fp);
  fp = fnv1a_u64(options.baseline ? 1 : 0, fp);
  fp = fnv1a_u64(options.unrolls, fp);
  fp = fnv1a_u64(options.dump_gtype ? 1 : 0, fp);
  fp = fnv1a_u64(options.timeout_ms, fp);
  fp = fnv1a_u64(options.budget_steps, fp);
  fp = fnv1a_u64(options.budget_mb, fp);
  return fp;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct CacheKey {
  std::uint64_t id = 0;       // def id or gtype id
  std::uint64_t opts_fp = 0;  // options fingerprint

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.id == b.id && a.opts_fp == b.opts_fp;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    return static_cast<std::size_t>(fnv1a_u64(k.opts_fp, fnv1a_u64(k.id, 14695981039346656037ULL)));
  }
};

// Fixed per-entry overhead charged against the byte quota on top of the
// owned strings (map node, key, stamps).
constexpr std::size_t kEntryOverheadBytes = 96;

struct PerFile {
  std::string path;
  int exit_code = 2;
  bool cached = false;
  std::string text;
};

}  // namespace

struct Service::Impl {
  explicit Impl(ServiceOptions opts)
      : options(std::move(opts)), engine(std::max(1u, options.jobs)) {}

  ServiceOptions options;
  Engine engine;

  std::mutex mu;  // guards everything below

  // Definition identity: one id per distinct input path, allocated on
  // first sight and stable for the daemon's lifetime.
  std::unordered_map<std::string, std::uint64_t> def_ids;
  std::uint64_t next_def_id = 1;

  struct DefEntry {
    std::uint64_t content_fp = 0;  // FNV-1a of the file bytes
    std::string text;              // complete rendered report
    int exit_code = 0;
    std::size_t bytes = 0;
    std::uint64_t last_use = 0;
  };
  std::unordered_map<CacheKey, DefEntry, CacheKeyHash> defs;

  struct GtypeEntry {
    std::string analysis;  // the block after the compile header
    int exit_code = 0;
    std::vector<std::uint64_t> deps;  // def ids this entry derives from
    std::size_t bytes = 0;
    std::uint64_t last_use = 0;
  };
  std::unordered_map<CacheKey, GtypeEntry, CacheKeyHash> gtypes;

  std::size_t cache_bytes = 0;
  std::uint64_t generation = 0;  // LRU stamp source

  // Daemon-lifetime tallies, mirrored into the obs registry. Kept here
  // too so the "stats" op reports this service, not whatever else the
  // process touched.
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_invalidated = 0;
  std::uint64_t cache_evictions = 0;

  std::uint64_t def_id_for(const std::string& path) {
    const auto [it, inserted] = def_ids.try_emplace(path, next_def_id);
    if (inserted) ++next_def_id;
    return it->second;
  }

  // Quota-correct upserts: two requests racing on the same key both run
  // the analysis and both store; the overwritten entry's bytes must come
  // back off the tally.
  void put_def(const CacheKey& key, DefEntry entry) {
    const auto it = defs.find(key);
    if (it != defs.end()) cache_bytes -= it->second.bytes;
    cache_bytes += entry.bytes;
    defs.insert_or_assign(key, std::move(entry));
  }

  void put_gtype(const CacheKey& key, GtypeEntry entry) {
    const auto it = gtypes.find(key);
    if (it != gtypes.end()) cache_bytes -= it->second.bytes;
    cache_bytes += entry.bytes;
    gtypes.insert_or_assign(key, std::move(entry));
  }

  // Erases the dirty cone of `def_id`: its def entries under every
  // options fingerprint, and every gtype entry tagged with it. Nothing
  // else is touched — that is the whole incremental-reanalysis claim.
  void invalidate_cone(std::uint64_t def_id) {
    std::uint64_t erased = 0;
    for (auto it = defs.begin(); it != defs.end();) {
      if (it->first.id == def_id) {
        cache_bytes -= it->second.bytes;
        it = defs.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    for (auto it = gtypes.begin(); it != gtypes.end();) {
      const auto& deps = it->second.deps;
      if (std::find(deps.begin(), deps.end(), def_id) != deps.end()) {
        cache_bytes -= it->second.bytes;
        it = gtypes.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    cache_invalidated += erased;
    DaemonMetrics::get().cache_invalidated.force_add(erased);
  }

  // LRU eviction down to the quota. Linear scans are fine: eviction is
  // rare and the maps hold one entry per (file|gtype, options) pair, not
  // per node. Follows up with a cooperative memo-pool purge and an arena
  // trim so the freed bytes actually leave the process.
  void maybe_evict() {
    bool evicted = false;
    while (cache_bytes > options.cache_quota_bytes &&
           (!defs.empty() || !gtypes.empty())) {
      std::uint64_t oldest = ~std::uint64_t{0};
      const CacheKey* def_key = nullptr;
      const CacheKey* gtype_key = nullptr;
      for (const auto& [key, entry] : defs) {
        if (entry.last_use < oldest) {
          oldest = entry.last_use;
          def_key = &key;
          gtype_key = nullptr;
        }
      }
      for (const auto& [key, entry] : gtypes) {
        if (entry.last_use < oldest) {
          oldest = entry.last_use;
          gtype_key = &key;
          def_key = nullptr;
        }
      }
      if (def_key != nullptr) {
        const auto it = defs.find(*def_key);
        cache_bytes -= it->second.bytes;
        defs.erase(it);
      } else if (gtype_key != nullptr) {
        const auto it = gtypes.find(*gtype_key);
        cache_bytes -= it->second.bytes;
        gtypes.erase(it);
      } else {
        break;
      }
      ++cache_evictions;
      DaemonMetrics::get().cache_evictions.force_add(1);
      evicted = true;
    }
    if (evicted) {
      request_memo_pool_purge();
      trim_scan_arena(scan_arena_trim_quota());
    }
  }

  PerFile analyze_one(const std::string& path, const CorpusOptions& opts,
                      std::uint64_t opts_fp);
};

namespace {

Budget::Limits budget_limits(const CorpusOptions& options) {
  Budget::Limits limits;
  limits.deadline_ms = options.timeout_ms;
  limits.max_steps = options.budget_steps;
  limits.max_bytes = options.budget_mb * 1024 * 1024;
  return limits;
}

bool has_budget(const CorpusOptions& options) {
  return options.timeout_ms != 0 || options.budget_steps != 0 ||
         options.budget_mb != 0;
}

}  // namespace

PerFile Service::Impl::analyze_one(const std::string& path,
                                   const CorpusOptions& opts,
                                   std::uint64_t opts_fp) {
  PerFile result;
  result.path = path;

  const auto source = read_file(path);
  if (!source) {
    result.text = "cannot open '" + path + "'\n";
    return result;  // exit 2; never cached
  }
  const std::uint64_t content_fp = fnv1a_bytes(source->data(), source->size());

  std::uint64_t def_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu);
    def_id = def_id_for(path);
    const auto it = defs.find(CacheKey{def_id, opts_fp});
    if (it != defs.end()) {
      if (it->second.content_fp == content_fp) {
        it->second.last_use = ++generation;
        ++cache_hits;
        DaemonMetrics::get().cache_hits.force_add(1);
        result.exit_code = it->second.exit_code;
        result.text = it->second.text;
        result.cached = true;
        return result;
      }
      invalidate_cone(def_id);
    }
  }

  // Compile outside the cache lock: the interner is internally
  // synchronized, and concurrent requests should overlap here.
  const CompiledInput compiled = compile_input(path, *source, opts);
  if (compiled.gtype == nullptr) {
    result.text = compiled.header;
    return result;  // exit 2; never cached
  }
  const std::uint64_t gtype_id = facts_of(compiled.gtype)->id;

  {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = gtypes.find(CacheKey{gtype_id, opts_fp});
    if (it != gtypes.end()) {
      it->second.last_use = ++generation;
      auto& deps = it->second.deps;
      if (std::find(deps.begin(), deps.end(), def_id) == deps.end()) {
        deps.push_back(def_id);
        it->second.bytes += sizeof(std::uint64_t);
        cache_bytes += sizeof(std::uint64_t);
      }
      ++cache_hits;
      DaemonMetrics::get().cache_hits.force_add(1);
      result.exit_code = it->second.exit_code;
      result.text = compiled.header + it->second.analysis;
      result.cached = true;
      // Refresh the def entry so the next unchanged request skips even
      // the recompile.
      DefEntry def_entry;
      def_entry.content_fp = content_fp;
      def_entry.text = result.text;
      def_entry.exit_code = result.exit_code;
      def_entry.bytes =
          def_entry.text.size() + path.size() + kEntryOverheadBytes;
      def_entry.last_use = generation;
      put_def(CacheKey{def_id, opts_fp}, std::move(def_entry));
      maybe_evict();
      return result;
    }
  }

  // Full analysis, outside the lock. Fresh per-request budget: one slow
  // request trips ITS limits, concurrent requests are unaffected.
  std::optional<Budget> budget;
  if (has_budget(opts)) budget.emplace(budget_limits(opts));
  std::ostringstream body;
  BudgetStatus budget_status;
  int code = 2;
  try {
    code = analyze_gtype_report(compiled.gtype, opts, &engine,
                                budget ? &*budget : nullptr, body,
                                &budget_status);
  } catch (const std::exception& e) {
    result.text = "internal error analyzing '" + path + "': " + e.what() + "\n";
    return result;
  } catch (...) {
    result.text = "internal error analyzing '" + path +
                  "': unknown exception\n";
    return result;
  }
  result.exit_code = code;
  result.text = compiled.header + body.str();

  if (code == 0 || code == 1) {
    std::lock_guard<std::mutex> lock(mu);
    ++generation;
    GtypeEntry gtype_entry;
    gtype_entry.analysis = body.str();
    gtype_entry.exit_code = code;
    gtype_entry.deps.push_back(def_id);
    gtype_entry.bytes = gtype_entry.analysis.size() + sizeof(std::uint64_t) +
                        kEntryOverheadBytes;
    gtype_entry.last_use = generation;
    put_gtype(CacheKey{gtype_id, opts_fp}, std::move(gtype_entry));
    DefEntry def_entry;
    def_entry.content_fp = content_fp;
    def_entry.text = result.text;
    def_entry.exit_code = code;
    def_entry.bytes = def_entry.text.size() + path.size() + kEntryOverheadBytes;
    def_entry.last_use = generation;
    put_def(CacheKey{def_id, opts_fp}, std::move(def_entry));
    maybe_evict();
  }
  return result;
}

Service::Service(ServiceOptions options) {
  // Derive the process-wide arena retention cap from the cache quota: a
  // daemon squeezed into a small footprint must not let every worker
  // thread retain the default 8 MiB of scan arena on the side.
  const std::size_t arena_cap = std::min<std::size_t>(
      scan_arena_trim_quota(),
      std::max<std::size_t>(options.cache_quota_bytes / 8, 64u * 1024));
  set_scan_arena_trim_quota(arena_cap);
  impl_ = std::make_unique<Impl>(std::move(options));
}

Service::~Service() = default;

SnapshotLoadResult Service::warm_start(const std::string& path) {
  const auto start = std::chrono::steady_clock::now();
  SnapshotLoadResult result = load_snapshot(path);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  DaemonMetrics::get().warm_start_ms.set(elapsed.count());
  return result;
}

std::string Service::handle_line(const std::string& line, bool* shutdown) {
  if (shutdown != nullptr) *shutdown = false;

  Request request;
  std::string parse_error;
  std::string response;
  if (!parse_request(line, &request, &parse_error)) {
    response = "{\"ok\":false,\"error\":";
    append_json_string(response, parse_error);
    response += "}";
    return response;
  }

  obs::Span span("daemon", obs::trace_enabled()
                               ? "request:" + request.op
                               : std::string());
  DaemonMetrics::get().requests.force_add(1);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    ++impl_->requests;
  }

  const auto begin_ok = [&](const char* op) {
    response = "{\"ok\":true,\"op\":\"";
    response += op;
    response += "\"";
    if (!request.id.empty()) {
      response += ",\"id\":";
      append_json_string(response, request.id);
    }
  };
  const auto fail = [&](const std::string& message) {
    response = "{\"ok\":false";
    if (!request.id.empty()) {
      response += ",\"id\":";
      append_json_string(response, request.id);
    }
    response += ",\"error\":";
    append_json_string(response, message);
    response += "}";
    return response;
  };

  if (request.op == "ping") {
    begin_ok("ping");
    response += "}";
    return response;
  }

  if (request.op == "shutdown") {
    if (shutdown != nullptr) *shutdown = true;
    begin_ok("shutdown");
    response += "}";
    return response;
  }

  if (request.op == "stats") {
    std::uint64_t requests_n = 0;
    std::uint64_t hits = 0;
    std::uint64_t invalidated = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      requests_n = impl_->requests;
      hits = impl_->cache_hits;
      invalidated = impl_->cache_invalidated;
      evictions = impl_->cache_evictions;
      entries = impl_->defs.size() + impl_->gtypes.size();
      bytes = impl_->cache_bytes;
    }
    begin_ok("stats");
    response += ",\"requests\":" + std::to_string(requests_n);
    response += ",\"cache_hits\":" + std::to_string(hits);
    response += ",\"cache_invalidated\":" + std::to_string(invalidated);
    response += ",\"cache_evictions\":" + std::to_string(evictions);
    response += ",\"cache_entries\":" + std::to_string(entries);
    response += ",\"cache_bytes\":" + std::to_string(bytes);
    response += ",\"interned_nodes\":" +
                std::to_string(GTypeInterner::instance().stats().nodes);
    response += ",\"jobs\":" + std::to_string(impl_->engine.threads());
    response += "}";
    return response;
  }

  if (request.op == "snapshot") {
    if (request.path.empty()) return fail("snapshot requires \"path\"");
    const SnapshotWriteResult written = save_snapshot(request.path);
    if (!written.ok) return fail(written.error);
    begin_ok("snapshot");
    response += ",\"path\":";
    append_json_string(response, request.path);
    response += ",\"nodes\":" + std::to_string(written.nodes);
    response += ",\"bytes\":" + std::to_string(written.bytes);
    response += "}";
    return response;
  }

  if (request.op == "submit" || request.op == "reanalyze") {
    if (request.files.empty()) {
      return fail(request.op + " requires at least one \"file\"");
    }
    CorpusOptions opts = impl_->options.defaults;
    if (request.baseline) opts.baseline = *request.baseline != 0;
    if (request.new_push) opts.new_push = *request.new_push != 0;
    if (request.dump_gtype) opts.dump_gtype = *request.dump_gtype != 0;
    if (request.max_iters) {
      opts.max_iters = static_cast<unsigned>(*request.max_iters);
    }
    if (request.unrolls) {
      opts.unrolls = static_cast<unsigned>(*request.unrolls);
    }
    if (request.timeout_ms) opts.timeout_ms = *request.timeout_ms;
    if (request.budget_steps) opts.budget_steps = *request.budget_steps;
    if (request.budget_mb) opts.budget_mb = *request.budget_mb;
    const std::uint64_t opts_fp = options_fingerprint(opts);

    std::vector<PerFile> files(request.files.size());
    ThreadPool* pool = impl_->engine.pool();
    if (pool == nullptr || request.files.size() < 2) {
      for (std::size_t i = 0; i < request.files.size(); ++i) {
        files[i] = impl_->analyze_one(request.files[i], opts, opts_fp);
      }
    } else {
      // Indexed slots, exactly like drive_corpus: completion order never
      // shows in the response.
      TaskGroup group(*pool);
      for (std::size_t i = 0; i < request.files.size(); ++i) {
        group.run([&, i] {
          files[i] = impl_->analyze_one(request.files[i], opts, opts_fp);
        });
      }
      group.wait();
    }

    int exit_code = 0;
    for (const PerFile& file : files) {
      exit_code = std::max(exit_code, file.exit_code);
    }
    begin_ok(request.op.c_str());
    response += ",\"exit_code\":" + std::to_string(exit_code);
    response += ",\"files\":[";
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (i != 0) response += ",";
      response += "{\"path\":";
      append_json_string(response, files[i].path);
      response += ",\"exit_code\":" + std::to_string(files[i].exit_code);
      response += ",\"cached\":";
      response += files[i].cached ? "1" : "0";
      response += ",\"report\":";
      append_json_string(response, files[i].text);
      response += "}";
    }
    response += "]}";
    return response;
  }

  return fail("unknown op '" + request.op + "'");
}

}  // namespace gtdl::service
