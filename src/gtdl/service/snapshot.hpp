// Versioned serialization of the interned graph-type DAG.
//
// A snapshot is the warm half of the daemon's state that survives a
// restart: every interned node, written bottom-up in id order so the
// reader can rebuild the DAG with plain gt:: constructor calls (children
// always precede parents — see GTypeInterner::all_nodes()). Loading into
// a FRESH interner replays the exact same intern order and therefore
// reproduces the exact same ids, which `ids_identical` reports; loading
// into a warm interner still canonicalizes correctly (hash-consing makes
// re-interning idempotent), the ids just may differ.
//
// Binary layout (all integers little-endian, packed):
//
//   u8[8]  magic   "GTDLSNP1"
//   u32    version (kSnapshotVersion)
//   u32    reserved (0)
//   u64    symbol_count
//   u64    node_count
//   u64    payload_bytes
//   u64    checksum (FNV-1a over the payload)
//   ----- payload -----
//   symbol table: symbol_count × { u32 len, bytes }  (first-use order)
//   nodes, ascending id: { u64 id, u8 tag, fields... }
//     child references are u64 ORIGINAL ids (must already be decoded),
//     symbols are u32 indices into the snapshot's symbol table,
//     vectors are u32 count + elements, widths/indices are u32.
//
// Safety contract (ISSUE 9): a mismatched magic/version, a truncated
// file, a bad checksum, or any structurally invalid record makes load
// return {ok=false, error} — the daemon logs the diagnostic and falls
// back to a cold start. A snapshot can cost warmth, never correctness.

#pragma once

#include <cstdint>
#include <string>

namespace gtdl::service {

inline constexpr std::uint32_t kSnapshotVersion = 1;

struct SnapshotWriteResult {
  bool ok = false;
  std::string error;          // filled when !ok
  std::uint64_t nodes = 0;    // nodes written
  std::uint64_t symbols = 0;  // symbol-table entries written
  std::uint64_t bytes = 0;    // total file size
};

struct SnapshotLoadResult {
  bool ok = false;
  std::string error;        // filled when !ok; load had NO effect
  std::uint64_t nodes = 0;  // nodes re-interned
  // True when every re-interned node received the id recorded in the
  // snapshot — guaranteed for a fresh interner, the property the
  // round-trip differential test asserts.
  bool ids_identical = false;
};

// Serializes every node currently interned in GTypeInterner::instance().
[[nodiscard]] SnapshotWriteResult save_snapshot(const std::string& path);

// Validates and replays `path` into GTypeInterner::instance(). Prefers
// mmap for the read (the common daemon warm-start path touches the file
// once, sequentially); falls back to a buffered read where mmap is
// unavailable.
[[nodiscard]] SnapshotLoadResult load_snapshot(const std::string& path);

}  // namespace gtdl::service
