#include "gtdl/service/daemon.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define GTDL_DAEMON_HAS_SOCKETS 1
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace gtdl::service {

int run_stdio(Service& service, std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    bool shutdown = false;
    out << service.handle_line(line, &shutdown) << "\n";
    out.flush();
    if (shutdown) break;
  }
  return 0;
}

#if GTDL_DAEMON_HAS_SOCKETS

namespace {

// Writes all of `data`, riding out short writes and EINTR. A failed
// write just ends the connection — the client went away.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void serve_connection(Service& service, int fd, std::atomic<bool>& stop) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client closed
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      const std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (line.empty()) continue;
      bool shutdown = false;
      std::string response = service.handle_line(line, &shutdown);
      response.push_back('\n');
      if (!write_all(fd, response)) {
        ::close(fd);
        return;
      }
      if (shutdown) {
        stop.store(true, std::memory_order_release);
        ::close(fd);
        return;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

}  // namespace

int run_socket(Service& service, const std::string& socket_path,
               std::ostream& err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    err << "fdld: socket path too long: " << socket_path << "\n";
    return 1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    err << "fdld: socket(): " << std::strerror(errno) << "\n";
    return 1;
  }
  ::unlink(socket_path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    err << "fdld: bind('" << socket_path << "'): " << std::strerror(errno)
        << "\n";
    ::close(listener);
    return 1;
  }
  if (::listen(listener, 16) != 0) {
    err << "fdld: listen(): " << std::strerror(errno) << "\n";
    ::close(listener);
    ::unlink(socket_path.c_str());
    return 1;
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> connections;
  // Poll with a short timeout so a shutdown delivered on a connection
  // thread breaks the accept loop promptly without signals.
  while (!stop.load(std::memory_order_acquire)) {
    pollfd pfd{listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      err << "fdld: poll(): " << std::strerror(errno) << "\n";
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      err << "fdld: accept(): " << std::strerror(errno) << "\n";
      break;
    }
    connections.emplace_back(
        [&service, fd, &stop] { serve_connection(service, fd, stop); });
  }

  ::close(listener);
  for (std::thread& t : connections) t.join();
  ::unlink(socket_path.c_str());
  return 0;
}

#else

int run_socket(Service&, const std::string&, std::ostream& err) {
  err << "fdld: unix-domain sockets are unavailable on this platform; "
         "use --stdio\n";
  return 1;
}

#endif

}  // namespace gtdl::service
