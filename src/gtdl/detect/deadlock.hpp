// The paper's deadlock-freedom kind system (Fig. 4), implemented as a
// deterministic, syntax-directed pass over graph types.
//
// The judgment Δ; Ω; Ψ ⊢DF G : κ controls ownership and use of future
// vertices:
//   * Ω, the spawn context, is LINEAR: every vertex that may be spawned
//     must be spawned exactly once on every execution path. This rules
//     out deadlock situation (1): touching a future that is never
//     spawned.
//   * Ψ, the touch context, admits a vertex only once it is known to have
//     been spawned "to the left" (DF:SEQ moves the left operand's spawned
//     vertices into the right operand's Ψ). This rules out situation (2):
//     touch/spawn cycles.
//
// Algorithmically, the declarative rules' nondeterministic splitting of Ω
// (DF:SEQ) is resolved by resource threading: checking a subterm returns
// the exact set of spawn vertices it consumed. Consumption is syntactically
// determined (spawn nodes and application spawn-arguments), so the split is
// unique and one pass suffices:
//
//   check •          : consumes ∅
//   check γ          : consumes ∅; kind from Δ
//   check G1 ⊕ G2    : c1 = check G1; check G2 under avail − c1, Ψ ∪ c1
//   check G1 ∨ G2    : both under the same contexts; REQUIRE c1 = c2
//                      ("because of linearity, both must spawn the same
//                      vertices")
//   check G /u       : u ∈ avail; body under avail − {u} (and the same Ψ —
//                      the future body may not touch its own vertex)
//   check ᵘ\         : u ∈ Ψ, else the touch may precede the spawn
//   check νu.G       : body under avail ∪ {u}; REQUIRE u consumed
//   check μγ.Πūf;ūt.G: body under avail = ūf exactly (linear resources
//                      must not be captured), Ψ ∪ ūt; REQUIRE body
//                      consumes all of ūf; Δ extended with γ : Πūf;ūt.*
//                      (a bare μγ.G is treated as μγ.Π[;].G)
//   check Πūf;ūt.G   : like μ's body but ambient avail remains visible
//                      (DF:PI permits capture)
//   check G[ū'f;ū't] : fn must have a matching Π kind; spawn arguments
//                      are consumed from avail; touch arguments must be
//                      in Ψ already
//
// The driver optionally (a) validates well-formedness first and (b)
// applies the "new pushing" transformation (§5) that moves ν binders to
// their smallest scope, which removes the false positives GML's
// hoist-ν-to-function-top convention would otherwise cause.

#pragma once

#include "gtdl/gtype/gtype.hpp"
#include "gtdl/gtype/kind.hpp"
#include "gtdl/support/budget.hpp"
#include "gtdl/support/diagnostics.hpp"

namespace gtdl {

class Engine;  // par/engine.hpp

// Three-valued analysis outcome. The DF kinding is sound, so
// kDeadlockFree is a theorem and kMayDeadlock is "could not verify"; a
// kUnknown verdict says the analysis itself was cut short by a resource
// budget — neither claim holds, and the BudgetStatus says which limit
// tripped.
enum class Verdict : unsigned char {
  kDeadlockFree,
  kMayDeadlock,
  kUnknown,
};

[[nodiscard]] const char* to_string(Verdict v) noexcept;

struct DetectOptions {
  // Run the affine well-formedness kinding first and fail fast if the
  // type is not even well-formed.
  bool require_wellformed = true;
  // Apply new pushing (§5) before checking.
  bool new_pushing = true;
  // Optional parallel engine (par/engine.hpp, not owned). When set and
  // backed by a pool, the well-formedness gate overlaps with a
  // speculative new-push + DF kinding; the speculative result is
  // discarded if the gate rejects, so the verdict and diagnostics are
  // identical to the sequential path. Null (or a 1-thread engine) means
  // strictly sequential checking.
  Engine* engine = nullptr;
  // Optional resource budget (support/budget.hpp, not owned; typically
  // shared with the rest of the per-file analysis). Polled once per WF/DF
  // kinding step; a trip yields Verdict::kUnknown.
  Budget* budget = nullptr;
};

struct DeadlockVerdict {
  // True iff the type was accepted: every graph it represents is
  // deadlock-free (Theorem 1: its traces satisfy Transitive Joins).
  // Redundant with `verdict == kDeadlockFree`; kept because most callers
  // only care about the accept/not-accept boundary.
  bool deadlock_free = false;
  // The three-valued outcome; kUnknown means the budget tripped first.
  Verdict verdict = Verdict::kMayDeadlock;
  // Which limit tripped, when verdict == kUnknown (reason == kNone
  // otherwise).
  BudgetStatus budget;
  GraphKind kind;
  // Rejection reasons (empty when accepted). As with any sound static
  // analysis, a rejection means "could not verify", not "has a deadlock".
  DiagnosticEngine diags;
  // The type actually analyzed (after new pushing, if enabled).
  GTypePtr analyzed;
};

[[nodiscard]] DeadlockVerdict check_deadlock_freedom(
    const GTypePtr& g, const DetectOptions& options = {});

}  // namespace gtdl
