#include "gtdl/detect/counterexample.hpp"

#include <cassert>
#include <stdexcept>

#include "gtdl/graph/csr.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/intern.hpp"

namespace gtdl {

namespace {

Symbol numbered(const char* base, unsigned i) {
  return Symbol::intern(std::string(base) + std::to_string(i));
}

}  // namespace

GTypePtr counterexample_function_gtype(unsigned m) {
  if (m == 0) {
    throw std::invalid_argument("counterexample family requires m >= 1");
  }
  const Symbol gamma = Symbol::intern("g");
  const Symbol u = Symbol::intern("u");
  std::vector<Symbol> spawn_params;
  std::vector<Symbol> touch_params;
  for (unsigned i = 1; i <= m; ++i) {
    spawn_params.push_back(numbered("a", i));
    touch_params.push_back(numbered("x", i));
  }
  // Recursive call: both vectors rotated left, the fresh u appended.
  std::vector<Symbol> spawn_args(spawn_params.begin() + 1, spawn_params.end());
  spawn_args.push_back(u);
  std::vector<Symbol> touch_args(touch_params.begin() + 1, touch_params.end());
  touch_args.push_back(u);

  const GTypePtr else_branch = gt::seq_all({
      gt::touch(touch_params.front()),
      gt::spawn(gt::empty(), spawn_params.front()),
      gt::app(gt::var(gamma), std::move(spawn_args), std::move(touch_args)),
  });
  const GTypePtr body =
      gt::nu(u, gt::alt(gt::empty(), std::move(else_branch)));
  return gt::rec(gamma, gt::pi(std::move(spawn_params),
                               std::move(touch_params), body));
}

GTypePtr counterexample_gtype(unsigned m) {
  const GTypePtr fn = counterexample_function_gtype(m);
  std::vector<Symbol> us;
  std::vector<Symbol> ws;
  for (unsigned i = 1; i <= m; ++i) {
    us.push_back(numbered("u", i));
    ws.push_back(numbered("w", i));
  }
  std::vector<GTypePtr> main_parts;
  for (Symbol w : ws) main_parts.push_back(gt::spawn(gt::empty(), w));
  main_parts.push_back(gt::app(fn, us, ws));
  GTypePtr body = gt::seq_all(std::move(main_parts));
  std::vector<Symbol> binders = us;
  binders.insert(binders.end(), ws.begin(), ws.end());
  GTypePtr result = gt::nu_all(binders, std::move(body));
  // The family is closed by construction; the interned fact block makes
  // checking that a field read. (Repeated calls with the same m also
  // return the SAME node now — the whole family is shared.)
  assert(facts_of(result) != nullptr &&
         facts_of(result)->free_vertices.empty() &&
         facts_of(result)->free_gvars.empty());
  return result;
}

std::string counterexample_futlang(unsigned m) {
  if (m == 0) {
    throw std::invalid_argument("counterexample family requires m >= 1");
  }
  std::string src;
  src += "# Counterexample family member m = " + std::to_string(m) +
         " (paper, Section 3).\n";
  src += "# The deadlock manifests only at the " + std::to_string(m + 1) +
         "-th recursive call.\n";
  src += "fun g(";
  for (unsigned i = 1; i <= m; ++i) {
    src += "a" + std::to_string(i) + ": future[int], ";
  }
  for (unsigned i = 1; i <= m; ++i) {
    src += "x" + std::to_string(i) + ": future[int]";
    if (i != m) src += ", ";
  }
  src += ") {\n";
  src += "  let u = new_future[int]();\n";
  src += "  if rand() == 0 {\n    return;\n  } else {\n";
  src += "    touch(x1);\n";
  src += "    spawn a1 { return 42; }\n";
  src += "    g(";
  for (unsigned i = 2; i <= m; ++i) src += "a" + std::to_string(i) + ", ";
  src += "u, ";
  for (unsigned i = 2; i <= m; ++i) src += "x" + std::to_string(i) + ", ";
  src += "u);\n";
  src += "    return;\n  }\n}\n\n";
  src += "fun main() {\n";
  for (unsigned i = 1; i <= m; ++i) {
    src += "  let u" + std::to_string(i) + " = new_future[int]();\n";
  }
  for (unsigned i = 1; i <= m; ++i) {
    src += "  let w" + std::to_string(i) + " = new_future[int]();\n";
  }
  for (unsigned i = 1; i <= m; ++i) {
    src += "  spawn w" + std::to_string(i) + " { return 42; }\n";
  }
  src += "  g(";
  for (unsigned i = 1; i <= m; ++i) src += "u" + std::to_string(i) + ", ";
  for (unsigned i = 1; i <= m; ++i) {
    src += "w" + std::to_string(i);
    if (i != m) src += ", ";
  }
  src += ");\n}\n";
  return src;
}

bool normalization_has_deadlock(const GTypePtr& g, unsigned depth,
                                const NormalizeLimits& limits) {
  GraphArena arena;
  bool found = false;
  for_each_graph(g, depth, limits, [&](const GraphExprPtr& graph) {
    if (find_ground_deadlock(*graph, arena).any()) {
      found = true;
      return false;  // first witness: stop the enumeration
    }
    return true;
  });
  return found;
}

unsigned deadlock_manifestation_depth(const GTypePtr& g, unsigned max_depth,
                                      const NormalizeLimits& limits) {
  for (unsigned depth = 1; depth <= max_depth; ++depth) {
    if (normalization_has_deadlock(g, depth, limits)) return depth;
  }
  return 0;
}

}  // namespace gtdl
