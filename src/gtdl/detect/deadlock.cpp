#include "gtdl/detect/deadlock.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "gtdl/detect/new_push.hpp"
#include "gtdl/gtype/intern.hpp"
#include "gtdl/gtype/wellformed.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/par/engine.hpp"
#include "gtdl/par/thread_pool.hpp"
#include "gtdl/support/flat_memo.hpp"
#include "gtdl/support/overloaded.hpp"
#include "gtdl/support/string_util.hpp"

namespace gtdl {

namespace {

std::string render_set(const OrderedSet<Symbol>& set) {
  return "{" + join(set, ", ", [](Symbol s) { return s.str(); }) + "}";
}

struct DetectMetrics {
  obs::Counter& checks;
  obs::Counter& accepts;
  obs::Counter& rejects;
  obs::Counter& unknowns;
  obs::Counter& spec_wins;
  obs::Counter& spec_losses;
  obs::Counter& closed_memo_hits;
  obs::Counter& closed_memo_misses;

  static DetectMetrics& get() {
    static DetectMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      auto c = [&reg](const char* name, const char* unit,
                      const char* help) -> obs::Counter& {
        return reg.counter(obs::MetricDesc{name, "detect", unit, help});
      };
      return new DetectMetrics{
          c("detect.checks", "checks", "check_deadlock_freedom calls"),
          c("detect.accepts", "checks", "verdicts: deadlock-free"),
          c("detect.rejects", "checks", "verdicts: possible deadlock"),
          c("detect.unknowns", "checks",
            "verdicts: unknown (resource budget tripped)"),
          c("detect.speculation.wins", "checks",
            "speculative DF kindings kept (WF gate passed)"),
          c("detect.speculation.losses", "checks",
            "speculative DF kindings discarded (WF gate failed)"),
          c("detect.df.closed_memo_hits", "lookups",
            "DF closed-subterm memo hits"),
          c("detect.df.closed_memo_misses", "lookups",
            "DF closed-subterm kinds computed and cached"),
      };
    }();
    return *m;
  }
};

class DfChecker {
 public:
  DfChecker(DiagnosticEngine& diags, Budget* budget)
      : diags_(diags), budget_(budget) {}

  [[nodiscard]] bool tripped() const noexcept { return tripped_; }

  struct Outcome {
    GraphKind kind;
    OrderedSet<Symbol> consumed;
  };

  // Checks `g` with the linear spawn context `avail` (vertices that may —
  // and on every path must — be spawned here or be consumed by an
  // enclosing sibling) and the member touch context psi_.
  std::optional<Outcome> check(const GTypePtr& g, OrderedSet<Symbol> avail) {
    // Budget poll, once per kinding step. No diagnostic: the driver maps
    // tripped() to Verdict::kUnknown (an abort, not a rejection).
    if (budget_ != nullptr && budget_->checkpoint()) {
      tripped_ = true;
      return std::nullopt;
    }
    // Closed-subterm memo (cf. wellformed.cpp). A subterm with no free
    // vertices/graph variables consumes nothing and judges independently
    // of Ω/Ψ — provided none of its binder names collides with a name
    // already in either context (DF has no shadowing rejection, so e.g. a
    // touch of an inner-bound u would wrongly pass against an outer
    // psi_ entry for the same name).
    const GTypeFacts* facts = g->facts;
    auto& interner = GTypeInterner::instance();
    bool closed = facts != nullptr && interner.memoization_enabled() &&
                  facts->free_vertices.empty() && facts->free_gvars.empty() &&
                  !facts->bound_vertices.intersects(psi_bits_);
    if (closed) {
      for (Symbol u : avail) {
        const std::size_t idx = interner.find_index(u);
        if (idx != GTypeInterner::npos && facts->bound_vertices.test(idx)) {
          closed = false;
          break;
        }
      }
    }
    if (closed) {
      if (const GraphKind* hit = closed_memo_.find(facts->id)) {
        DetectMetrics::get().closed_memo_hits.add();
        return Outcome{*hit, {}};
      }
    }
    // Chains of ';'/'|' parse iteratively, so syntactically valid input
    // can nest arbitrarily deep trees; report instead of overflowing.
    if (depth_ >= kMaxCheckDepth) {
      fail("graph type nested too deeply to check (limit " +
           std::to_string(kMaxCheckDepth) + " levels)");
      return std::nullopt;
    }
    ++depth_;
    auto result = check_uncached(g, std::move(avail));
    --depth_;
    // Only successes are reusable (failures must re-report diagnostics).
    if (closed && result) {
      DetectMetrics::get().closed_memo_misses.add();
      closed_memo_.put(facts->id, result->kind);
    }
    return result;
  }

  std::optional<Outcome> check_uncached(const GTypePtr& g,
                                        OrderedSet<Symbol> avail) {
    return std::visit(
        Overloaded{
            [&](const GTEmpty&) {
              // DF:EMPTY — consumes nothing; linearity is enforced where
              // resources were introduced.
              return std::optional<Outcome>(Outcome{GraphKind::star(), {}});
            },
            [&](const GTSeq& node) -> std::optional<Outcome> {
              auto lhs = check_star(node.lhs, avail);
              if (!lhs) return std::nullopt;
              // DF:SEQ — everything the left spawned is touchable on the
              // right.
              const OrderedSet<Symbol> remaining =
                  avail.set_difference(lhs->consumed);
              ScopedPsi extend(*this, lhs->consumed);
              auto rhs = check_star(node.rhs, remaining);
              if (!rhs) return std::nullopt;
              return Outcome{GraphKind::star(),
                             lhs->consumed.set_union(rhs->consumed)};
            },
            [&](const GTOr& node) -> std::optional<Outcome> {
              auto lhs = check_star(node.lhs, avail);
              if (!lhs) return std::nullopt;
              auto rhs = check_star(node.rhs, avail);
              if (!rhs) return std::nullopt;
              // DF:OR — Ω is shared, and linearity forces both branches
              // to spawn exactly the same vertices.
              if (!(lhs->consumed == rhs->consumed)) {
                fail("the branches of '|' spawn different vertex sets (" +
                     render_set(lhs->consumed) + " vs " +
                     render_set(rhs->consumed) +
                     "); linearity requires both alternatives to spawn the "
                     "same vertices");
                return std::nullopt;
              }
              return Outcome{GraphKind::star(), lhs->consumed};
            },
            [&](const GTSpawn& node) -> std::optional<Outcome> {
              // DF:SPAWN — u leaves the spawn context; the future body may
              // spawn the remaining vertices but touches only what was
              // already touchable (Ψ is unchanged, so it cannot touch u or
              // its own later siblings).
              if (!avail.contains(node.vertex)) {
                fail("vertex '" + node.vertex.str() +
                     "' is not spawnable here (unbound, already spawned, or "
                     "captured by a recursive binding)");
                return std::nullopt;
              }
              avail.erase(node.vertex);
              auto body = check_star(node.body, std::move(avail));
              if (!body) return std::nullopt;
              OrderedSet<Symbol> consumed = body->consumed;
              consumed.insert(node.vertex);
              return Outcome{GraphKind::star(), std::move(consumed)};
            },
            [&](const GTTouch& node) -> std::optional<Outcome> {
              // DF:TOUCH — only vertices already known to be spawned "to
              // the left" are touchable.
              if (!psi_.contains(node.vertex)) {
                fail("touch of vertex '" + node.vertex.str() +
                     "' is not provably after its spawn; the touch could "
                     "block forever or close a cycle");
                return std::nullopt;
              }
              return std::optional<Outcome>(Outcome{GraphKind::star(), {}});
            },
            [&](const GTRec& node) -> std::optional<Outcome> {
              return check_rec(node);
            },
            [&](const GTVar& node) -> std::optional<Outcome> {
              auto it = gvars_.find(node.var);
              if (it == gvars_.end()) {
                fail("unbound graph variable '" + node.var.str() + "'");
                return std::nullopt;
              }
              // DF:VAR — consumes nothing.
              return Outcome{it->second, {}};
            },
            [&](const GTNew& node) -> std::optional<Outcome> {
              // DF:NEW — the new vertex enters the spawn context only (it
              // becomes touchable via DF:SEQ once spawned); linearity then
              // demands it is spawned on every path.
              avail.insert(node.vertex);
              auto body = check_star(node.body, std::move(avail));
              if (!body) return std::nullopt;
              if (!body->consumed.contains(node.vertex)) {
                fail("vertex '" + node.vertex.str() +
                     "' introduced by 'new' is never spawned (linearity); a "
                     "touch of it would block forever");
                return std::nullopt;
              }
              OrderedSet<Symbol> consumed = body->consumed;
              consumed.erase(node.vertex);
              return Outcome{GraphKind::star(), std::move(consumed)};
            },
            [&](const GTPi& node) -> std::optional<Outcome> {
              // DF:PI — unlike μ, a plain Π may capture ambient linear
              // resources.
              OrderedSet<Symbol> inner = std::move(avail);
              for (Symbol u : node.spawn_params) inner.insert(u);
              ScopedPsi extend(*this,
                               OrderedSet<Symbol>(node.touch_params));
              auto body = check_star(node.body, inner);
              if (!body) return std::nullopt;
              OrderedSet<Symbol> consumed = body->consumed;
              for (Symbol u : node.spawn_params) {
                if (!consumed.contains(u)) {
                  fail("spawn parameter '" + u.str() +
                       "' is never spawned by the pi body (linearity)");
                  return std::nullopt;
                }
                consumed.erase(u);
              }
              return Outcome{GraphKind::pi(node.spawn_params.size(),
                                           node.touch_params.size()),
                             std::move(consumed)};
            },
            [&](const GTApp& node) -> std::optional<Outcome> {
              auto fn = check(node.fn, avail);
              if (!fn) return std::nullopt;
              if (!fn->kind.is_pi) {
                fail("applied graph type has kind *; expected a pi kind");
                return std::nullopt;
              }
              if (fn->kind.spawn_arity != node.spawn_args.size() ||
                  fn->kind.touch_arity != node.touch_args.size()) {
                fail("application arity mismatch: expected [" +
                     std::to_string(fn->kind.spawn_arity) + ";" +
                     std::to_string(fn->kind.touch_arity) + "] arguments, "
                     "got [" +
                     std::to_string(node.spawn_args.size()) + ";" +
                     std::to_string(node.touch_args.size()) + "]");
                return std::nullopt;
              }
              // DF:APP — spawn arguments are linear resources consumed by
              // the call; touch arguments must already be touchable.
              OrderedSet<Symbol> remaining = avail.set_difference(fn->consumed);
              OrderedSet<Symbol> consumed = fn->consumed;
              for (Symbol u : node.spawn_args) {
                if (!remaining.contains(u)) {
                  fail("spawn argument '" + u.str() +
                       "' is not spawnable here (unbound, already spawned, "
                       "or passed twice)");
                  return std::nullopt;
                }
                remaining.erase(u);
                consumed.insert(u);
              }
              for (Symbol u : node.touch_args) {
                if (!psi_.contains(u)) {
                  fail("touch argument '" + u.str() +
                       "' is not provably spawned before this call; the "
                       "callee's touch could close a cycle");
                  return std::nullopt;
                }
              }
              return Outcome{GraphKind::star(), std::move(consumed)};
            },
            [&](const GTVecSpawn& node) -> std::optional<Outcome> {
              // DF:VECSPAWN — the sized family is ONE linear resource;
              // all members are spawned here at once. The shared member
              // body touches only what was touchable before the family
              // existed (Ψ unchanged), so a member can never touch a
              // sibling of its own family — conservative, and sound: the
              // family enters Ψ only via DF:SEQ, after every member is
              // provably spawned.
              if (!avail.contains(node.family)) {
                fail("family '" + node.family.str() +
                     "' is not spawnable here (unbound, already spawned, or "
                     "captured by a recursive binding)");
                return std::nullopt;
              }
              avail.erase(node.family);
              auto body = check_star(node.body, std::move(avail));
              if (!body) return std::nullopt;
              OrderedSet<Symbol> consumed = body->consumed;
              consumed.insert(node.family);
              return Outcome{GraphKind::star(), std::move(consumed)};
            },
            [&](const GTTouchAll& node) -> std::optional<Outcome> {
              // DF:TOUCHALL — touching every member is safe exactly when
              // the family as a whole is provably spawned to the left.
              if (!psi_.contains(node.family)) {
                fail("touch-all of family '" + node.family.str() +
                     "' is not provably after its spawn; a member touch "
                     "could block forever or close a cycle");
                return std::nullopt;
              }
              return std::optional<Outcome>(Outcome{GraphKind::star(), {}});
            },
            [&](const GTTouchIdx& node) -> std::optional<Outcome> {
              if (!psi_.contains(node.family)) {
                fail("indexed touch of family '" + node.family.str() +
                     "' is not provably after its spawn; the touch could "
                     "block forever or close a cycle");
                return std::nullopt;
              }
              if (node.index >= node.width) {
                fail("family index " + std::to_string(node.index) +
                     " is out of bounds for '" + node.family.str() +
                     "' of width " + std::to_string(node.width));
                return std::nullopt;
              }
              return std::optional<Outcome>(Outcome{GraphKind::star(), {}});
            },
            [&](const GTPipe&) -> std::optional<Outcome> {
              // DF:PIPE — judge the desugared form; the stage vertices
              // are ordinary ν-bound names, so DF:NEW's linearity proves
              // every stage is spawned and DF:SEQ orders the handoffs.
              return check(pipe_desugar(g), std::move(avail));
            },
        },
        g->node);
  }

 private:
  // Temporarily extends Ψ; restores the previous contents on destruction.
  class ScopedPsi {
   public:
    ScopedPsi(DfChecker& checker, const OrderedSet<Symbol>& add)
        : checker_(checker) {
      auto& interner = GTypeInterner::instance();
      for (Symbol u : add) {
        if (checker_.psi_.insert(u)) {
          checker_.psi_bits_.set(interner.index_of(u));
          added_.push_back(u);
        }
      }
    }
    ~ScopedPsi() {
      auto& interner = GTypeInterner::instance();
      for (Symbol u : added_) {
        checker_.psi_.erase(u);
        checker_.psi_bits_.clear(interner.index_of(u));
      }
    }
    ScopedPsi(const ScopedPsi&) = delete;
    ScopedPsi& operator=(const ScopedPsi&) = delete;

   private:
    DfChecker& checker_;
    std::vector<Symbol> added_;
  };

  // Like check, but the result must be usable as an ordinary graph; a
  // zero-arity Π kind is implicitly applied (bare recursive calls).
  std::optional<Outcome> check_star(const GTypePtr& g,
                                    OrderedSet<Symbol> avail) {
    auto result = check(g, std::move(avail));
    if (!result) return std::nullopt;
    if (result->kind.is_pi) {
      if (result->kind.spawn_arity == 0 && result->kind.touch_arity == 0) {
        result->kind = GraphKind::star();
        return result;
      }
      fail("expected an ordinary graph type, found kind " +
           to_string(result->kind) +
           " (missing vertex arguments in an application?)");
      return std::nullopt;
    }
    return result;
  }

  std::optional<Outcome> check_rec(const GTRec& node) {
    // DF:RECPI — μγ.Πūf;ūt.G, with a bare body read as Π[;].G. The outer
    // spawn context must not leak into the body (linear resources cannot
    // be captured by a recursive binding, where they could be duplicated).
    const GTPi* pi = std::get_if<GTPi>(&node.body->node);
    std::vector<Symbol> spawn_params;
    std::vector<Symbol> touch_params;
    GTypePtr body = node.body;
    if (pi != nullptr) {
      spawn_params = pi->spawn_params;
      touch_params = pi->touch_params;
      body = pi->body;
    }
    const GraphKind kind =
        GraphKind::pi(spawn_params.size(), touch_params.size());

    OrderedSet<Symbol> inner_avail;
    for (Symbol u : spawn_params) {
      if (!inner_avail.insert(u)) {
        fail("duplicate spawn parameter '" + u.str() + "'");
        return std::nullopt;
      }
    }
    ScopedPsi extend(*this, OrderedSet<Symbol>(touch_params));

    auto saved = gvars_.find(node.var);
    const bool had = saved != gvars_.end();
    const GraphKind saved_kind = had ? saved->second : GraphKind{};
    gvars_[node.var] = kind;
    auto result = check_star(body, inner_avail);
    if (had) {
      gvars_[node.var] = saved_kind;
    } else {
      gvars_.erase(node.var);
    }
    if (!result) return std::nullopt;
    for (Symbol u : spawn_params) {
      if (!result->consumed.contains(u)) {
        fail("spawn parameter '" + u.str() +
             "' is never spawned by the recursive body (linearity)");
        return std::nullopt;
      }
    }
    // The μ term itself consumes nothing from the ambient context.
    return Outcome{kind, {}};
  }

  void fail(std::string message) { diags_.error(std::move(message)); }

  DiagnosticEngine& diags_;
  Budget* budget_ = nullptr;
  bool tripped_ = false;
  OrderedSet<Symbol> psi_;
  // Matches the parser/normalizer depth budgets: trips well before an
  // 8 MiB stack does, even with sanitizer-inflated frames.
  static constexpr std::size_t kMaxCheckDepth = 2'000;
  std::size_t depth_ = 0;
  SymbolBitset psi_bits_;  // psi_ mirrored over the interner index
  std::unordered_map<Symbol, GraphKind> gvars_;
  LeasedMemo<std::uint64_t, GraphKind> closed_memo_;
};

}  // namespace

namespace {

// The DF kinding proper: new pushing + Fig. 4 check, diagnostics into
// `verdict`. Factored out so the parallel driver can run it speculatively
// against a scratch verdict while the WF gate runs on the pool.
// Stamps a budget-tripped verdict: neither accepted nor rejected.
void mark_unknown(DeadlockVerdict& verdict, const Budget* budget) {
  verdict.deadlock_free = false;
  verdict.verdict = Verdict::kUnknown;
  if (budget != nullptr) verdict.budget = budget->status();
}

void run_df_kinding(const GTypePtr& g, const DetectOptions& options,
                    DeadlockVerdict& verdict) {
  obs::Span span("detect", "df_kinding");
  verdict.analyzed = options.new_pushing ? push_new_bindings(g) : g;
  DfChecker checker(verdict.diags, options.budget);
  auto outcome = checker.check(verdict.analyzed, OrderedSet<Symbol>{});
  if (checker.tripped()) {
    mark_unknown(verdict, options.budget);
    return;
  }
  if (!outcome || verdict.diags.has_errors()) {
    verdict.deadlock_free = false;
    verdict.verdict = Verdict::kMayDeadlock;
    return;
  }
  // Leftover consumption is impossible at the top level: the initial
  // spawn context is empty, so consumed ⊆ ∅.
  verdict.deadlock_free = true;
  verdict.verdict = Verdict::kDeadlockFree;
  verdict.kind = outcome->kind;
}

void reject_ill_formed(const WellformedResult& wf, DeadlockVerdict& verdict) {
  verdict.diags.error("graph type is not well-formed:");
  for (const Diagnostic& d : wf.diags.all()) {
    verdict.diags.report(d.severity, d.loc, d.message);
  }
}

}  // namespace

const char* to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kDeadlockFree:
      return "deadlock-free";
    case Verdict::kMayDeadlock:
      return "may-deadlock";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "?";
}

namespace {

// The honest analysis; the public entry point below may deliberately
// corrupt its verdict under GTDL_TESTING_MISVERDICT (and nothing else).
DeadlockVerdict check_deadlock_freedom_honest(const GTypePtr& g,
                                              const DetectOptions& options) {
  DetectMetrics& dm = DetectMetrics::get();
  dm.checks.add();
  obs::Span span("detect", "check_deadlock_freedom");
  const auto record_verdict = [&dm](const DeadlockVerdict& v) {
    switch (v.verdict) {
      case Verdict::kDeadlockFree:
        dm.accepts.add();
        break;
      case Verdict::kMayDeadlock:
        dm.rejects.add();
        break;
      case Verdict::kUnknown:
        dm.unknowns.add();
        break;
    }
  };
  DeadlockVerdict verdict;
  if (g == nullptr) {
    verdict.diags.error("null graph type");
    record_verdict(verdict);
    return verdict;
  }
  ThreadPool* pool =
      options.engine != nullptr ? options.engine->pool() : nullptr;
  if (pool != nullptr && options.require_wellformed) {
    // Overlap the WF gate with a speculative DF kinding. Both passes are
    // read-only over the interned DAG (their memos are per-call), so they
    // may run concurrently; the DF result is thrown away when the gate
    // rejects, which reproduces the sequential fail-fast output exactly.
    GTypeInterner::ScopedAnalysis analysis_guard;
    WellformedResult wf;
    TaskGroup group(*pool);
    Budget* budget = options.budget;
    group.run([&g, &wf, budget] { wf = check_wellformed(g, budget); });
    DeadlockVerdict speculative;
    run_df_kinding(g, options, speculative);
    group.wait();
    if (wf.budget_exhausted) {
      // The gate never finished: even a clean DF kinding proves nothing
      // about an ill-formed type, so the combined verdict is Unknown.
      mark_unknown(verdict, options.budget);
      record_verdict(verdict);
      return verdict;
    }
    if (!wf.ok) {
      dm.spec_losses.add();
      reject_ill_formed(wf, verdict);
      record_verdict(verdict);
      return verdict;
    }
    dm.spec_wins.add();
    record_verdict(speculative);
    return speculative;
  }
  if (options.require_wellformed) {
    obs::Span wf_span("detect", "wellformed_gate");
    WellformedResult wf = check_wellformed(g, options.budget);
    if (wf.budget_exhausted) {
      mark_unknown(verdict, options.budget);
      record_verdict(verdict);
      return verdict;
    }
    if (!wf.ok) {
      reject_ill_formed(wf, verdict);
      record_verdict(verdict);
      return verdict;
    }
  }
  run_df_kinding(g, options, verdict);
  record_verdict(verdict);
  return verdict;
}

}  // namespace

DeadlockVerdict check_deadlock_freedom(const GTypePtr& g,
                                       const DetectOptions& options) {
  DeadlockVerdict verdict = check_deadlock_freedom_honest(g, options);
  // Deliberate mis-verdict hook for the differential fuzzing farm's
  // self-test (docs/ROBUSTNESS.md "Trusting the farm"): with
  // GTDL_TESTING_MISVERDICT=accept-all in the environment, every honest
  // rejection is flipped to an (unsound) acceptance. The farm run
  // against such a detector MUST report unsound findings — if it does
  // not, the farm itself is broken. Read per call, never cached: tests
  // set and clear the variable around individual farm runs.
  if (verdict.verdict == Verdict::kMayDeadlock) {
    const char* env = std::getenv("GTDL_TESTING_MISVERDICT");
    if (env != nullptr && std::string_view(env) == std::string_view("accept-all")) {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        std::fprintf(stderr,
                     "gtdl: WARNING: GTDL_TESTING_MISVERDICT=accept-all is "
                     "set; deadlock verdicts are deliberately UNSOUND\n");
      }
      verdict.verdict = Verdict::kDeadlockFree;
      verdict.deadlock_free = true;
      verdict.diags = DiagnosticEngine();
    }
  }
  return verdict;
}

}  // namespace gtdl
