// May-happen-in-parallel (MHP) analysis — the paper's closing direction
// ("we hope [graph types] can be applied in the future to other problems
// such as race detection"), built on the same machinery.
//
// Section 2.2: an edge (u, u') means u must happen before u'; "the lack
// of a path between two computations indicates that they may occur in
// parallel". Two future threads may therefore race iff, in some graph of
// the program's graph type, neither thread's designated vertex reaches
// the other.
//
// Two granularities are provided:
//
//   * mhp_in_graph — exact, on one ground graph (one execution): the
//     designated vertices u and w may happen in parallel iff neither
//     subtree's vertices are ordered against the other's. We approximate
//     a thread by its designated end vertex; u ∥ w iff there is no path
//     u -> w and no path w -> u. (A future's end vertex is ordered after
//     everything the future did and before everything that touched it,
//     so end-vertex reachability is the thread-level happens-before.)
//
//   * mhp_in_type — existential over the graph type: do the two named
//     vertices run in parallel in SOME graph of Norm_n(G)? Normalization
//     instantiates ν binders with fresh names (u becomes u$k, once per
//     unrolling), so the query is by BINDER: any instance of u against
//     any instance of w (and u against u asks whether two unrollings of
//     the same binder can overlap). Like the GML baseline this is
//     bounded (normalization is exponential), so the result carries the
//     bound and a truncation flag; unlike deadlock detection, MHP
//     queries are naturally per-execution ("can these two handlers
//     overlap?"), where bounded enumeration is the standard tool.

#pragma once

#include <optional>

#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/gtype.hpp"
#include "gtdl/gtype/normalize.hpp"

namespace gtdl {

// Exact verdict on one ground graph. Returns nullopt if either vertex is
// not a designated (spawned) vertex of the graph.
[[nodiscard]] std::optional<bool> mhp_in_graph(const GraphExpr& g, Symbol u,
                                               Symbol w);

struct MhpResult {
  // True iff some explored graph runs u and w in parallel.
  bool may_happen_in_parallel = false;
  // Number of graphs in which both vertices were spawned.
  std::size_t witnesses_checked = 0;
  unsigned depth = 0;
  bool truncated = false;
};

// True iff `concrete` is `binder` itself or a fresh instance of it
// (binder$k, possibly re-freshened).
[[nodiscard]] bool is_vertex_instance(Symbol concrete, Symbol binder);

// Bounded existential query over Norm_depth(G); `u` and `w` name binders
// in the type (ν/Π names), matched against their instances.
[[nodiscard]] MhpResult mhp_in_type(const GTypePtr& g, Symbol u, Symbol w,
                                    unsigned depth,
                                    const NormalizeLimits& limits = {});

}  // namespace gtdl
