// The §3 counterexample family to GML's unrolling conjecture.
//
// Member m (m ≥ 1) is the graph type of a recursive function g taking m
// futures to spawn (a1..am) and m futures to touch (x1..xm):
//
//   G_m = rec g. pi[a1,..,am; x1,..,xm]. new u.
//           ( 1 | (~x1 ; 1 / a1 ; g[a2,..,am,u ; x2,..,xm,u]) )
//
// together with a main thread that allocates u1..um and w1..wm, spawns
// the w's (so the touch chain starts legally), and calls
// g[u1..um; w1..wm]:
//
//   T_m = new u1..um, w1..wm. ( 1/w1 ; .. ; 1/wm ; G_m[u1..um; w1..wm] )
//
// On every call, g touches its first touch argument, spawns its first
// spawn argument, and recurses with both argument vectors rotated left
// and the locally created u appended to both. The fresh vertex created at
// call k therefore arrives in the *first* spawn and touch positions at
// call k+m — where it is touched *before* it is spawned, closing a cycle.
// The deadlock thus manifests only at the (m+1)-st unrolling: no fixed
// unrolling bound works for the whole family, which is the refutation of
// the conjecture underlying GML's detector.

#pragma once

#include <string>

#include "gtdl/gtype/gtype.hpp"
#include "gtdl/gtype/normalize.hpp"

namespace gtdl {

// T_m above — the whole-program graph type. Requires m >= 1 (throws
// std::invalid_argument otherwise).
[[nodiscard]] GTypePtr counterexample_gtype(unsigned m);

// G_m alone (the recursive function's graph type).
[[nodiscard]] GTypePtr counterexample_function_gtype(unsigned m);

// The same program in FutLang source form (examples/programs uses m = 1;
// GML-faithful inference with the 2-round Mycroft cap fails on m >= 2,
// reproducing the paper's footnote 3).
[[nodiscard]] std::string counterexample_futlang(unsigned m);

// The number of μ-unrollings needed before any graph in the normalization
// exhibits the cycle: m + 1.
[[nodiscard]] constexpr unsigned counterexample_cycle_depth(unsigned m) {
  return m + 1;
}

// True iff some graph in Norm_depth(g) has a ground deadlock (cycle or
// unspawned touch). Streams the enumeration and stops at the first
// witness — the graph set is never materialized, which is what makes
// probing the family at the depths where |Norm_n| is exponential cheap.
[[nodiscard]] bool normalization_has_deadlock(
    const GTypePtr& g, unsigned depth, const NormalizeLimits& limits = {});

// The smallest depth in [1, max_depth] at which a deadlock manifests in
// Norm_depth(g), or 0 if none does within the bound. For member m of the
// family this is m + 3 (m + 2 recursive-call unrollings plus the
// application-fuel step).
[[nodiscard]] unsigned deadlock_manifestation_depth(
    const GTypePtr& g, unsigned max_depth, const NormalizeLimits& limits = {});

}  // namespace gtdl
