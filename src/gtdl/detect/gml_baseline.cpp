#include "gtdl/detect/gml_baseline.hpp"

#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/intern.hpp"
#include "gtdl/gtype/subst.hpp"
#include "gtdl/support/overloaded.hpp"
#include "gtdl/support/string_util.hpp"

namespace gtdl {

GTypePtr expand_recursion(const GTypePtr& g, unsigned k) {
  // μ-free subtrees expand to themselves; the cached constructor counts
  // make that a field read, skipping whole-subtree rebuilds.
  if (g->facts != nullptr && g->facts->stats.mu_bindings == 0) return g;
  return std::visit(
      Overloaded{
          [&](const GTEmpty&) { return g; },
          [&](const GTSeq& node) {
            return gt::seq(expand_recursion(node.lhs, k),
                           expand_recursion(node.rhs, k));
          },
          [&](const GTOr& node) {
            return gt::alt(expand_recursion(node.lhs, k),
                           expand_recursion(node.rhs, k));
          },
          [&](const GTSpawn& node) {
            return gt::spawn(expand_recursion(node.body, k), node.vertex);
          },
          [&](const GTTouch&) { return g; },
          [&](const GTRec& node) {
            const GTypePtr body = expand_recursion(node.body, k);
            // γ⊥: an unbound variable normalizes to the empty set, so
            // recursion paths deeper than k produce no graphs.
            GTypePtr acc = gt::var(
                Symbol::fresh(node.var.str() + "_exhausted"));
            for (unsigned i = 0; i < k; ++i) {
              acc = substitute_gvar(body, node.var, acc);
            }
            return acc;
          },
          [&](const GTVar&) { return g; },
          [&](const GTNew& node) {
            return gt::nu(node.vertex, expand_recursion(node.body, k));
          },
          [&](const GTPi& node) {
            return gt::pi(node.spawn_params, node.touch_params,
                          expand_recursion(node.body, k));
          },
          [&](const GTApp& node) {
            return gt::app(expand_recursion(node.fn, k), node.spawn_args,
                           node.touch_args);
          },
      },
      g->node);
}

GmlBaselineReport gml_baseline_check(const GTypePtr& g,
                                     const GmlBaselineOptions& options) {
  GmlBaselineReport report;
  report.unrolls_per_binding = options.unrolls_per_binding;
  const GTypePtr expanded =
      expand_recursion(g, options.unrolls_per_binding);
  // The expanded type is μ-free and all applications target Π binders
  // directly, so depth 1 normalizes it completely.
  const NormalizeResult normalized = normalize(expanded, 1, options.limits);
  report.truncated = normalized.truncated;
  report.graphs_checked = normalized.graphs.size();
  for (const GraphExprPtr& graph : normalized.graphs) {
    const GroundDeadlock verdict = find_ground_deadlock(*graph);
    if (verdict.any()) {
      report.deadlock_reported = true;
      report.witness =
          std::string(verdict.cycle ? "cycle through "
                                    : "unspawned touch of ") +
          join(verdict.witness, ", ", [](Symbol s) { return s.str(); }) +
          " in graph: " + to_string(*graph);
      break;
    }
  }
  return report;
}

}  // namespace gtdl
