#include "gtdl/detect/gml_baseline.hpp"

#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "gtdl/graph/graph.hpp"
#include "gtdl/par/engine.hpp"
#include "gtdl/par/thread_pool.hpp"
#include "gtdl/gtype/intern.hpp"
#include "gtdl/gtype/subst.hpp"
#include "gtdl/support/overloaded.hpp"
#include "gtdl/support/string_util.hpp"

namespace gtdl {

GTypePtr expand_recursion(const GTypePtr& g, unsigned k) {
  // μ-free subtrees expand to themselves; the cached constructor counts
  // make that a field read, skipping whole-subtree rebuilds.
  if (g->facts != nullptr && g->facts->stats.mu_bindings == 0) return g;
  return std::visit(
      Overloaded{
          [&](const GTEmpty&) { return g; },
          [&](const GTSeq& node) {
            return gt::seq(expand_recursion(node.lhs, k),
                           expand_recursion(node.rhs, k));
          },
          [&](const GTOr& node) {
            return gt::alt(expand_recursion(node.lhs, k),
                           expand_recursion(node.rhs, k));
          },
          [&](const GTSpawn& node) {
            return gt::spawn(expand_recursion(node.body, k), node.vertex);
          },
          [&](const GTTouch&) { return g; },
          [&](const GTRec& node) {
            const GTypePtr body = expand_recursion(node.body, k);
            // γ⊥: an unbound variable normalizes to the empty set, so
            // recursion paths deeper than k produce no graphs.
            GTypePtr acc = gt::var(
                Symbol::fresh(node.var.str() + "_exhausted"));
            for (unsigned i = 0; i < k; ++i) {
              acc = substitute_gvar(body, node.var, acc);
            }
            return acc;
          },
          [&](const GTVar&) { return g; },
          [&](const GTNew& node) {
            return gt::nu(node.vertex, expand_recursion(node.body, k));
          },
          [&](const GTPi& node) {
            return gt::pi(node.spawn_params, node.touch_params,
                          expand_recursion(node.body, k));
          },
          [&](const GTApp& node) {
            return gt::app(expand_recursion(node.fn, k), node.spawn_args,
                           node.touch_args);
          },
      },
      g->node);
}

namespace {

std::string render_witness(const GroundDeadlock& verdict,
                           const GraphExpr& graph) {
  return std::string(verdict.cycle ? "cycle through "
                                   : "unspawned touch of ") +
         join(verdict.witness, ", ", [](Symbol s) { return s.str(); }) +
         " in graph: " + to_string(graph);
}

// Fans the per-graph ground-deadlock scan out over the pool. Chunked so a
// task amortizes its cell over many cheap scans; the witness is reduced
// to the MINIMUM graph index across chunks, which is exactly the graph
// the sequential early-exit loop would have reported.
std::size_t parallel_scan(const std::vector<GraphExprPtr>& graphs,
                          ThreadPool& pool, unsigned threads,
                          GroundDeadlock& first_verdict) {
  const std::size_t chunks =
      std::min<std::size_t>(graphs.size(),
                            static_cast<std::size_t>(threads) * 4);
  const std::size_t chunk_len = (graphs.size() + chunks - 1) / chunks;
  std::mutex mu;
  std::size_t best = graphs.size();  // index of first offending graph
  GroundDeadlock best_verdict;
  {
    TaskGroup group(pool);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * chunk_len;
      const std::size_t end = std::min(begin + chunk_len, graphs.size());
      if (begin >= end) break;
      group.run([&, begin, end] {
        for (std::size_t i = begin; i < end; ++i) {
          {
            // A hit in an earlier chunk makes this whole chunk moot.
            std::lock_guard lock(mu);
            if (best <= begin) return;
          }
          const GroundDeadlock verdict = find_ground_deadlock(*graphs[i]);
          if (verdict.any()) {
            std::lock_guard lock(mu);
            if (i < best) {
              best = i;
              best_verdict = verdict;
            }
            return;  // later graphs in this chunk cannot beat index i
          }
        }
      });
    }
    group.wait();
  }
  first_verdict = best_verdict;
  return best;
}

}  // namespace

GmlBaselineReport gml_baseline_check(const GTypePtr& g,
                                     const GmlBaselineOptions& options) {
  GmlBaselineReport report;
  report.unrolls_per_binding = options.unrolls_per_binding;
  const GTypePtr expanded =
      expand_recursion(g, options.unrolls_per_binding);
  // The expanded type is μ-free and all applications target Π binders
  // directly, so depth 1 normalizes it completely.
  const NormalizeResult normalized =
      options.engine != nullptr
          ? options.engine->normalize(expanded, 1, options.limits)
          : normalize(expanded, 1, options.limits);
  report.truncated = normalized.truncated;
  report.graphs_checked = normalized.graphs.size();
  ThreadPool* pool =
      options.engine != nullptr ? options.engine->pool() : nullptr;
  if (pool != nullptr && normalized.graphs.size() > 1) {
    GroundDeadlock verdict;
    const std::size_t index = parallel_scan(
        normalized.graphs, *pool, options.engine->threads(), verdict);
    if (index < normalized.graphs.size()) {
      report.deadlock_reported = true;
      report.witness = render_witness(verdict, *normalized.graphs[index]);
    }
    return report;
  }
  for (const GraphExprPtr& graph : normalized.graphs) {
    const GroundDeadlock verdict = find_ground_deadlock(*graph);
    if (verdict.any()) {
      report.deadlock_reported = true;
      report.witness = render_witness(verdict, *graph);
      break;
    }
  }
  return report;
}

}  // namespace gtdl
