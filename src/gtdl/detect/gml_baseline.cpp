#include "gtdl/detect/gml_baseline.hpp"

#include <string>
#include <vector>

#include "gtdl/graph/graph.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/par/engine.hpp"
#include "gtdl/par/stream_scan.hpp"
#include "gtdl/gtype/intern.hpp"
#include "gtdl/gtype/subst.hpp"
#include "gtdl/support/overloaded.hpp"
#include "gtdl/support/string_util.hpp"

namespace gtdl {

GTypePtr expand_recursion(const GTypePtr& g, unsigned k) {
  // μ-free subtrees expand to themselves; the cached constructor counts
  // make that a field read, skipping whole-subtree rebuilds.
  if (g->facts != nullptr && g->facts->stats.mu_bindings == 0) return g;
  return std::visit(
      Overloaded{
          [&](const GTEmpty&) { return g; },
          [&](const GTSeq& node) {
            return gt::seq(expand_recursion(node.lhs, k),
                           expand_recursion(node.rhs, k));
          },
          [&](const GTOr& node) {
            return gt::alt(expand_recursion(node.lhs, k),
                           expand_recursion(node.rhs, k));
          },
          [&](const GTSpawn& node) {
            return gt::spawn(expand_recursion(node.body, k), node.vertex);
          },
          [&](const GTTouch&) { return g; },
          [&](const GTRec& node) {
            const GTypePtr body = expand_recursion(node.body, k);
            // γ⊥: an unbound variable normalizes to the empty set, so
            // recursion paths deeper than k produce no graphs.
            GTypePtr acc = gt::var(
                Symbol::fresh(node.var.str() + "_exhausted"));
            for (unsigned i = 0; i < k; ++i) {
              acc = substitute_gvar(body, node.var, acc);
            }
            return acc;
          },
          [&](const GTVar&) { return g; },
          [&](const GTNew& node) {
            return gt::nu(node.vertex, expand_recursion(node.body, k));
          },
          [&](const GTPi& node) {
            return gt::pi(node.spawn_params, node.touch_params,
                          expand_recursion(node.body, k));
          },
          [&](const GTApp& node) {
            return gt::app(expand_recursion(node.fn, k), node.spawn_args,
                           node.touch_args);
          },
          [&](const GTVecSpawn& node) {
            return gt::vecspawn(expand_recursion(node.body, k), node.family,
                                node.width);
          },
          [&](const GTTouchAll&) { return g; },
          [&](const GTTouchIdx&) { return g; },
          [&](const GTPipe& node) {
            return gt::pipe(expand_recursion(node.lhs, k),
                            expand_recursion(node.rhs, k));
          },
      },
      g->node);
}

namespace {

std::string render_witness(const GroundDeadlock& verdict,
                           const GraphExpr& graph) {
  return std::string(verdict.cycle ? "cycle through "
                                   : "unspawned touch of ") +
         join(verdict.witness, ", ", [](Symbol s) { return s.str(); }) +
         " in graph: " + to_string(graph);
}

}  // namespace

GmlBaselineReport gml_baseline_check(const GTypePtr& g,
                                     const GmlBaselineOptions& options) {
  GmlBaselineReport report;
  report.unrolls_per_binding = options.unrolls_per_binding;
  const GTypePtr expanded =
      expand_recursion(g, options.unrolls_per_binding);

  // First-witness mode: the expanded type is μ-free and all applications
  // target Π binders directly, so depth 1 enumerates it completely — one
  // graph at a time, scanned in scan_batch-sized windows, stopping at
  // the first batch containing a deadlock. The full graph list is never
  // materialized.
  obs::Span span("detect", "gml_scan");
  GroundDeadlockScanner::Options scan_options;
  scan_options.pool =
      options.engine != nullptr ? options.engine->pool() : nullptr;
  scan_options.threads =
      options.engine != nullptr ? options.engine->threads() : 1;
  scan_options.batch_size = options.scan_batch;
  scan_options.budget = options.limits.budget;
  GroundDeadlockScanner scanner(scan_options);
  const StreamStats stats = for_each_graph(
      expanded, 1, options.limits,
      [&](const GraphExprPtr& graph) { return scanner.push(graph); });
  scanner.finish();

  report.graphs_checked = scanner.pushed();
  report.truncated = stats.truncated;
  report.peak_buffered = stats.peak_materialized;
  if (scanner.found()) {
    report.deadlock_reported = true;
    report.witness =
        render_witness(scanner.verdict(), *scanner.offending_graph());
  } else if (options.limits.budget != nullptr &&
             (scanner.aborted() || options.limits.budget->exhausted())) {
    report.unknown = true;
    report.budget = options.limits.budget->status();
  }
  return report;
}

}  // namespace gtdl
