#include "gtdl/detect/mhp.hpp"

#include <algorithm>

#include "gtdl/graph/csr.hpp"
#include "gtdl/support/string_util.hpp"

namespace gtdl {

std::optional<bool> mhp_in_graph(const GraphExpr& g, Symbol u, Symbol w) {
  const std::vector<Symbol> spawned = spawned_vertices(g);
  const auto has = [&](Symbol v) {
    return std::find(spawned.begin(), spawned.end(), v) != spawned.end();
  };
  if (!has(u) || !has(w) || u == w) return std::nullopt;
  GraphArena arena;
  const CsrGraph graph = lower_to_csr(g, arena);
  const VertexId uv = graph.find_vertex(u);
  const VertexId wv = graph.find_vertex(w);
  // u ∥ w iff neither end vertex is ordered before the other.
  return !graph.reachable(uv, wv) && !graph.reachable(wv, uv);
}

bool is_vertex_instance(Symbol concrete, Symbol binder) {
  if (concrete == binder) return true;
  const std::string_view c = concrete.view();
  const std::string_view b = binder.view();
  // `binder$n` is a ν-instantiation; `binder@i` is a member of the touch
  // family `binder` (and `binder$n@i` a member of an instantiated family,
  // matched by the same '$' prefix test).
  return c.size() > b.size() + 1 && c.substr(0, b.size()) == b &&
         (c[b.size()] == '$' || c[b.size()] == '@');
}

MhpResult mhp_in_type(const GTypePtr& g, Symbol u, Symbol w, unsigned depth,
                      const NormalizeLimits& limits) {
  MhpResult result;
  result.depth = depth;
  const NormalizeResult normalized = normalize(g, depth, limits);
  result.truncated = normalized.truncated;
  GraphArena arena;
  for (const GraphExprPtr& graph : normalized.graphs) {
    const std::vector<Symbol> spawned = spawned_vertices(*graph);
    std::vector<Symbol> us;
    std::vector<Symbol> ws;
    for (Symbol v : spawned) {
      if (is_vertex_instance(v, u)) us.push_back(v);
      if (is_vertex_instance(v, w)) ws.push_back(v);
    }
    if (us.empty() || ws.empty()) continue;
    // Lower once per graph (reusing the arena across graphs), then test
    // every instance pair on the numeric ids.
    const CsrGraph lowered = lower_to_csr(*graph, arena);
    bool counted = false;
    for (Symbol a : us) {
      for (Symbol b : ws) {
        if (a == b) continue;
        if (!counted) {
          ++result.witnesses_checked;
          counted = true;
        }
        const VertexId av = lowered.find_vertex(a);
        const VertexId bv = lowered.find_vertex(b);
        if (!lowered.reachable(av, bv) && !lowered.reachable(bv, av)) {
          result.may_happen_in_parallel = true;
          return result;
        }
      }
    }
  }
  return result;
}

}  // namespace gtdl
