// The unrolling-based deadlock detector of the original graph-types work
// (GML), reimplemented as the paper's comparison baseline.
//
// The algorithm (paper §3): normalize the graph type so that EVERY
// RECURSIVE BINDING IS UNROLLED TWICE, then check every resulting ground
// graph for (a) cycles and (b) touches of vertices that are never
// spawned. Its soundness relied on the conjecture that any cycle arising
// at any unrolling depth already manifests within those graphs — which
// §3 refutes with a counterexample family (counterexample.hpp); this
// implementation exists precisely so the unsoundness can be demonstrated
// and measured.
//
// "Every binding unrolled at most k times" is implemented by finite
// μ-expansion: each μγ.B is replaced by B[B[...B[γ⊥/γ]...]/γ] with k
// nested copies of the body, where γ⊥ is a fresh unbound graph variable
// (whose normalization is the empty set, cutting off deeper recursions).
// The expanded type is μ-free, so plain normalization at depth 1
// enumerates exactly the graphs with per-binding recursion depth ≤ k.

#pragma once

#include <cstddef>
#include <string>

#include "gtdl/gtype/gtype.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/support/budget.hpp"

namespace gtdl {

class Engine;  // par/engine.hpp

struct GmlBaselineOptions {
  // Per-binding unroll bound; the paper's GML uses 2.
  unsigned unrolls_per_binding = 2;
  NormalizeLimits limits;
  // Optional parallel engine (par/engine.hpp, not owned): each batch of
  // streamed graphs is scanned fanned out over the pool. The reported
  // witness is deterministic regardless of thread count — always the
  // first offending graph in normalization order, as in the sequential
  // scan. Null (or a 1-thread engine) means strictly sequential.
  Engine* engine = nullptr;
  // Graphs buffered per scan batch. This bounds peak materialization of
  // the check (the graph stream is never collected into a list) and is
  // the determinism unit: a deadlock found anywhere in a batch stops the
  // stream at that batch's boundary, independent of thread count.
  std::size_t scan_batch = 512;
};

struct GmlBaselineReport {
  // True iff some graph within the unroll bound had a cycle or an
  // unspawned touch. False claims deadlock freedom — unsoundly, for the
  // §3 family.
  bool deadlock_reported = false;
  unsigned unrolls_per_binding = 0;
  // Graphs consumed from the normalization stream. When no deadlock is
  // found this is the full normalization count; on a hit the stream
  // stops at the scan-batch boundary just past the first offending
  // graph, so the count is smaller but still independent of thread
  // count.
  std::size_t graphs_checked = 0;
  bool truncated = false;
  // High-water mark of graphs the enumerator held buffered at once
  // (⊕-product rhs caches and memo captures). Bounded by
  // NormalizeLimits::stream_materialize_cap, NOT by the product size —
  // the evidence that the check no longer materializes Norm_n.
  std::size_t peak_buffered = 0;
  // The resource budget (GmlBaselineOptions::limits.budget) tripped
  // before the stream was exhausted AND no deadlock had been found: the
  // scan proved nothing either way. A found deadlock always wins over a
  // budget abort (the witness is real regardless of what was skipped).
  bool unknown = false;
  // Which limit tripped, when unknown (reason == kNone otherwise).
  BudgetStatus budget;
  // Human-readable witness (offending graph and why), empty if none.
  std::string witness;
};

[[nodiscard]] GmlBaselineReport gml_baseline_check(
    const GTypePtr& g, const GmlBaselineOptions& options = {});

// The finite μ-expansion described above (exposed for tests and benches):
// every μγ.B becomes k nested copies of B with the innermost recursive
// occurrence replaced by a fresh unbound variable.
[[nodiscard]] GTypePtr expand_recursion(const GTypePtr& g, unsigned k);

}  // namespace gtdl
