// "New pushing" (paper §5).
//
// GML inserts ν ("new") bindings only at the tops of function bodies, so a
// divide-and-conquer function gets the graph type
//
//     rec g. new u. (1 | (g / u ; g ; ~u))
//
// which the deadlock-freedom kinding rejects: the base-case branch never
// spawns u, violating linearity. The type is semantically equivalent to
//
//     rec g. (1 | new u. (g / u ; g ; ~u))
//
// which is accepted. push_new_bindings performs that rewrite: every ν
// binder is pushed to the smallest scope that still covers all free
// occurrences of its vertex, and ν binders whose vertex is entirely unused
// are dropped. All rewrites preserve the set of graphs the type
// normalizes to:
//
//   νu.(A ∨ B)  =  (νu.A) ∨ (νu.B)      (each normalization picks one branch)
//   νu.(A ⊕ B)  =  (νu.A) ⊕ B            when u ∉ fv(B)   (and symmetrically)
//   νu.(B /w)   =  (νu.B) /w             when u ≠ w
//   νu.νw.B     =  νw.νu.B
//   νu.B        =  B                     when u ∉ fv(B)
//
// ν binders are never pushed through μ, Π, or application boundaries:
// moving a ν inside a recursive binding would change "one vertex for the
// whole recursion" into "a fresh vertex per unrolling".

#pragma once

#include "gtdl/gtype/gtype.hpp"

namespace gtdl {

[[nodiscard]] GTypePtr push_new_bindings(const GTypePtr& g);

}  // namespace gtdl
