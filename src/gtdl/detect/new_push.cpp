#include "gtdl/detect/new_push.hpp"

#include <cstdint>
#include <unordered_map>

#include "gtdl/gtype/intern.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/support/overloaded.hpp"

namespace gtdl {

namespace {

// Pushing asks "is u free in this subtree?" once per ν binder per level.
// Interned nodes carry their free-vertex set as a cached bitset, so the
// query is a single bit test; the transform itself is memoized on node
// identity (it is context-free), so shared subterms are rewritten once.
class Pusher {
 public:
  GTypePtr transform(const GTypePtr& g) {
    const GTypeFacts* facts = g->facts;
    if (facts != nullptr) {
      auto it = memo_.find(facts->id);
      if (it != memo_.end()) return it->second;
    }
    GTypePtr result = std::visit(
        Overloaded{
            [&](const GTEmpty&) { return g; },
            [&](const GTSeq& node) {
              return gt::seq(transform(node.lhs), transform(node.rhs));
            },
            [&](const GTOr& node) {
              return gt::alt(transform(node.lhs), transform(node.rhs));
            },
            [&](const GTSpawn& node) {
              return gt::spawn(transform(node.body), node.vertex);
            },
            [&](const GTTouch&) { return g; },
            [&](const GTRec& node) {
              return gt::rec(node.var, transform(node.body));
            },
            [&](const GTVar&) { return g; },
            [&](const GTNew& node) {
              return push_binder(node.vertex, transform(node.body));
            },
            [&](const GTPi& node) {
              return gt::pi(node.spawn_params, node.touch_params,
                            transform(node.body));
            },
            [&](const GTApp& node) {
              return gt::app(transform(node.fn), node.spawn_args,
                             node.touch_args);
            },
            [&](const GTVecSpawn& node) {
              return gt::vecspawn(transform(node.body), node.family,
                                  node.width);
            },
            [&](const GTTouchAll&) { return g; },
            [&](const GTTouchIdx&) { return g; },
            [&](const GTPipe& node) {
              return gt::pipe(transform(node.lhs), transform(node.rhs));
            },
        },
        g->node);
    if (facts != nullptr) memo_.emplace(facts->id, result);
    return result;
  }

 private:
  static bool is_free_in(Symbol u, const GTypePtr& g) {
    if (g->facts != nullptr) {
      const std::size_t idx = GTypeInterner::instance().find_index(u);
      return idx != GTypeInterner::npos && g->facts->free_vertices.test(idx);
    }
    return free_vertices(*g).contains(u);
  }

  // Places νu around `body`, pushed as deep as the rewrites allow (see
  // header for the rewrite system). Precondition: `body` is already
  // fully transformed.
  GTypePtr push_binder(Symbol u, const GTypePtr& body) {
    if (!is_free_in(u, body)) return body;  // unused: drop the binder
    return std::visit(
        Overloaded{
            [&](const GTSeq& node) {
              const bool in_lhs = is_free_in(u, node.lhs);
              const bool in_rhs = is_free_in(u, node.rhs);
              if (in_lhs && in_rhs) return gt::nu(u, body);
              if (in_lhs) return gt::seq(push_binder(u, node.lhs), node.rhs);
              return gt::seq(node.lhs, push_binder(u, node.rhs));
            },
            [&](const GTOr& node) {
              // Push into each branch independently; the binder vanishes
              // from branches that do not mention u.
              return gt::alt(push_binder(u, node.lhs),
                             push_binder(u, node.rhs));
            },
            [&](const GTSpawn& node) {
              if (node.vertex == u) return gt::nu(u, body);
              return gt::spawn(push_binder(u, node.body), node.vertex);
            },
            [&](const GTNew& node) {
              if (node.vertex == u) return gt::nu(u, body);  // shadowed
              return gt::nu(node.vertex, push_binder(u, node.body));
            },
            [&](const GTVecSpawn&) {
              // Boundary: pushing νu inside the member body would turn
              // one shared instantiation of u into `width` distinct ones
              // (every member normalizes the body separately) — not a
              // semantics-preserving rewrite.
              return gt::nu(u, body);
            },
            // Everything else (touch, touch families, μ, Π, application,
            // pipes, variables, •) is a boundary the binder must not
            // cross.
            [&](const auto&) { return gt::nu(u, body); },
        },
        body->node);
  }

  std::unordered_map<std::uint64_t, GTypePtr> memo_;
};

}  // namespace

GTypePtr push_new_bindings(const GTypePtr& g) {
  obs::Span span("detect", "push_new_bindings");
  Pusher pusher;
  return pusher.transform(g);
}

}  // namespace gtdl
