#include "gtdl/detect/new_push.hpp"

#include <unordered_map>

#include "gtdl/support/overloaded.hpp"

namespace gtdl {

namespace {

// Pushing asks "is u free in this subtree?" once per ν binder per level;
// memoizing free-vertex sets by node identity turns the repeated O(|G|)
// traversals into cache hits (rebuilt nodes created by the rewrite are
// cached on first query too).
class Pusher {
 public:
  GTypePtr transform(const GTypePtr& g) {
    return std::visit(
        Overloaded{
            [&](const GTEmpty&) { return g; },
            [&](const GTSeq& node) {
              return gt::seq(transform(node.lhs), transform(node.rhs));
            },
            [&](const GTOr& node) {
              return gt::alt(transform(node.lhs), transform(node.rhs));
            },
            [&](const GTSpawn& node) {
              return gt::spawn(transform(node.body), node.vertex);
            },
            [&](const GTTouch&) { return g; },
            [&](const GTRec& node) {
              return gt::rec(node.var, transform(node.body));
            },
            [&](const GTVar&) { return g; },
            [&](const GTNew& node) {
              return push_binder(node.vertex, transform(node.body));
            },
            [&](const GTPi& node) {
              return gt::pi(node.spawn_params, node.touch_params,
                            transform(node.body));
            },
            [&](const GTApp& node) {
              return gt::app(transform(node.fn), node.spawn_args,
                             node.touch_args);
            },
        },
        g->node);
  }

 private:
  // The cache keys on node identity but must RETAIN the nodes: rewrite
  // temporaries die during the run and their addresses get recycled, so
  // a raw-pointer key would alias distinct nodes.
  struct PtrHash {
    std::size_t operator()(const GTypePtr& g) const noexcept {
      return std::hash<const GType*>{}(g.get());
    }
  };
  struct PtrEq {
    bool operator()(const GTypePtr& a, const GTypePtr& b) const noexcept {
      return a.get() == b.get();
    }
  };

  const OrderedSet<Symbol>& free_of(const GTypePtr& g) {
    auto [it, inserted] = free_cache_.try_emplace(g);
    if (!inserted) return it->second;
    OrderedSet<Symbol> out = std::visit(
        Overloaded{
            [&](const GTEmpty&) { return OrderedSet<Symbol>{}; },
            [&](const GTSeq& node) {
              return free_of(node.lhs).set_union(free_of(node.rhs));
            },
            [&](const GTOr& node) {
              return free_of(node.lhs).set_union(free_of(node.rhs));
            },
            [&](const GTSpawn& node) {
              OrderedSet<Symbol> s = free_of(node.body);
              s.insert(node.vertex);
              return s;
            },
            [&](const GTTouch& node) {
              return OrderedSet<Symbol>{node.vertex};
            },
            [&](const GTRec& node) { return free_of(node.body); },
            [&](const GTVar&) { return OrderedSet<Symbol>{}; },
            [&](const GTNew& node) {
              OrderedSet<Symbol> s = free_of(node.body);
              s.erase(node.vertex);
              return s;
            },
            [&](const GTPi& node) {
              OrderedSet<Symbol> s = free_of(node.body);
              for (Symbol u : node.spawn_params) s.erase(u);
              for (Symbol u : node.touch_params) s.erase(u);
              return s;
            },
            [&](const GTApp& node) {
              OrderedSet<Symbol> s = free_of(node.fn);
              for (Symbol u : node.spawn_args) s.insert(u);
              for (Symbol u : node.touch_args) s.insert(u);
              return s;
            },
        },
        g->node);
    // Recursive free_of calls may have rehashed the map; re-find.
    return free_cache_.insert_or_assign(g, std::move(out)).first->second;
  }

  bool is_free_in(Symbol u, const GTypePtr& g) {
    return free_of(g).contains(u);
  }

  // Places νu around `body`, pushed as deep as the rewrites allow (see
  // header for the rewrite system). Precondition: `body` is already
  // fully transformed.
  GTypePtr push_binder(Symbol u, const GTypePtr& body) {
    if (!is_free_in(u, body)) return body;  // unused: drop the binder
    return std::visit(
        Overloaded{
            [&](const GTSeq& node) {
              const bool in_lhs = is_free_in(u, node.lhs);
              const bool in_rhs = is_free_in(u, node.rhs);
              if (in_lhs && in_rhs) return gt::nu(u, body);
              if (in_lhs) return gt::seq(push_binder(u, node.lhs), node.rhs);
              return gt::seq(node.lhs, push_binder(u, node.rhs));
            },
            [&](const GTOr& node) {
              // Push into each branch independently; the binder vanishes
              // from branches that do not mention u.
              return gt::alt(push_binder(u, node.lhs),
                             push_binder(u, node.rhs));
            },
            [&](const GTSpawn& node) {
              if (node.vertex == u) return gt::nu(u, body);
              return gt::spawn(push_binder(u, node.body), node.vertex);
            },
            [&](const GTNew& node) {
              if (node.vertex == u) return gt::nu(u, body);  // shadowed
              return gt::nu(node.vertex, push_binder(u, node.body));
            },
            // Everything else (touch, μ, Π, application, variables, •) is
            // a boundary the binder must not cross.
            [&](const auto&) { return gt::nu(u, body); },
        },
        body->node);
  }

  std::unordered_map<GTypePtr, OrderedSet<Symbol>, PtrHash, PtrEq>
      free_cache_;
};

}  // namespace

GTypePtr push_new_bindings(const GTypePtr& g) {
  Pusher pusher;
  return pusher.transform(g);
}

}  // namespace gtdl
