#include "gtdl/ingest/trace_writer.hpp"

#include <cstdio>
#include <fstream>

namespace gtdl::ingest {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

TraceDumpWriter::TraceDumpWriter(std::string base)
    : TraceDumpWriter(std::move(base), Options{}) {}

TraceDumpWriter::TraceDumpWriter(std::string base, Options options)
    : base_(std::move(base)), options_(std::move(options)) {
  if (options_.shards == 0) options_.shards = 1;
  buffers_.resize(options_.shards);
  // The root thread claims ordinal 0, so its records (the spine of the
  // graph) land in shard 0 and child threads scatter from shard 1 on.
  thread_ordinal_.emplace(Symbol::intern(options_.root), 0);
  for (unsigned k = 0; k < options_.shards; ++k) {
    std::string& buf = buffers_[k];
    buf += "{\"trace_version\":";
    buf += std::to_string(kTraceVersion);
    buf += ",\"kind\":\"meta\",\"shard\":";
    buf += std::to_string(k);
    buf += ",\"shards\":";
    buf += std::to_string(options_.shards);
    buf += ",\"root\":\"";
    buf += json_escape(options_.root);
    buf += "\"";
    if (!options_.program.empty()) {
      buf += ",\"program\":\"";
      buf += json_escape(options_.program);
      buf += "\"";
    }
    buf += "}\n";
  }
}

std::size_t TraceDumpWriter::shard_of(Symbol thread) {
  const auto [it, inserted] =
      thread_ordinal_.emplace(thread, thread_ordinal_.size());
  (void)inserted;
  return it->second % options_.shards;
}

void TraceDumpWriter::append(std::size_t shard, std::string_view kind,
                             Symbol thread, Symbol vertex) {
  std::string& buf = buffers_[shard];
  buf += "{\"kind\":\"";
  buf += kind;
  buf += "\",\"seq\":";
  buf += std::to_string(next_seq_++);
  buf += ",\"thread\":\"";
  buf += json_escape(thread.view());
  buf += "\",\"vertex\":\"";
  buf += json_escape(vertex.view());
  buf += "\"}\n";
}

void TraceDumpWriter::record_spawn(Symbol thread, Symbol vertex) {
  std::lock_guard<std::mutex> lock(mu_);
  append(shard_of(thread), "spawn", thread, vertex);
}

void TraceDumpWriter::record_touch(Symbol thread, Symbol vertex) {
  std::lock_guard<std::mutex> lock(mu_);
  append(shard_of(thread), "touch", thread, vertex);
}

void TraceDumpWriter::record_block(Symbol thread, Symbol vertex) {
  std::lock_guard<std::mutex> lock(mu_);
  append(shard_of(thread), "block", thread, vertex);
}

void TraceDumpWriter::record_resolve(Symbol vertex) {
  std::lock_guard<std::mutex> lock(mu_);
  // A future is resolved by its own thread, which shares its name.
  append(shard_of(vertex), "resolve", vertex, vertex);
}

std::size_t TraceDumpWriter::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(next_seq_);
}

std::vector<std::string> TraceDumpWriter::flush(std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> written;
  for (unsigned k = 0; k < options_.shards; ++k) {
    const std::string path =
        base_ + "." + std::to_string(k) + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot write '" + path + "'";
      return written;
    }
    out << buffers_[k];
    if (!out.flush()) {
      if (error != nullptr) *error = "short write to '" + path + "'";
      return written;
    }
    written.push_back(path);
  }
  return written;
}

}  // namespace gtdl::ingest
