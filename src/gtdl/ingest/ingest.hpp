// Runtime-trace ingestion: observed dependency graphs as a first-class
// input path (docs/TRACE_FORMAT.md is the normative format spec).
//
// `fdlc --ingest 'graphdump.*.json'` reads the per-thread JSON-lines
// shards a traced execution dumped (trace_writer.hpp; Seastar's deadlock
// tooling pioneered the shape), merges them back into ONE dependency
// graph, and runs the same detectors the static pipeline uses:
//
//   shard files --parse--> records --merge by seq--> per-thread action
//   lists --stitch--> GraphExpr --lower_to_csr--> cycle / unspawned-touch
//   scan, plus the Fig. 6 trace for the TJ/KJ validity judgments.
//
// The verdict over an observed graph is intentionally asymmetric to the
// static one and the reports say so: a cycle or an unspawned touch in the
// trace IS a deadlock of that execution (exit 1), but a clean trace is
// evidence about one schedule only, never a deadlock-freedom proof — the
// clean verdict reads "NO DEADLOCK OBSERVED", not "DEADLOCK-FREE", and
// exit 0 in ingest mode carries that weaker meaning (README exit table).
//
// Malformed dumps are rejected with file:line provenance (exit 2): the
// format is a public contract and a record this layer cannot account for
// must never silently shift a verdict. Resource budgets bound the merge
// like any analysis (exit 3, verdict unknown).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gtdl/graph/graph_expr.hpp"
#include "gtdl/support/budget.hpp"
#include "gtdl/support/diagnostics.hpp"
#include "gtdl/support/symbol.hpp"

namespace gtdl::ingest {

// Expands a dump-set glob pattern (also accepts a plain path) into the
// sorted list of matching files. Empty result + *error when nothing
// matches or the glob itself fails.
[[nodiscard]] std::vector<std::string> expand_dump_glob(
    const std::string& pattern, std::string* error);

// The merged, validated form of one dump set.
struct MergedTrace {
  // False when any record was malformed; `diags` then explains every
  // problem with file:line provenance and `graph` is null.
  bool ok = false;
  // The per-set budget tripped mid-merge; verdict unknown.
  bool budget_exhausted = false;
  Symbol root;          // the dump's declared root thread
  GraphExprPtr graph;   // the stitched observed dependency graph
  std::size_t shards = 0;
  std::size_t records = 0;
  std::size_t threads = 0;   // root + spawned futures
  std::size_t futures = 0;   // distinct designated vertices (spawned ∪ touched)
  DiagnosticEngine diags;
};

// Parses every shard file, validates the record stream against the v1
// schema, and stitches the cross-shard spawn/touch structure back into a
// GraphExpr. `budget` (optional) is polled once per record.
[[nodiscard]] MergedTrace merge_trace_dumps(
    const std::vector<std::string>& files, Budget* budget = nullptr);

struct IngestOptions {
  // Parallelism across dump SETS (drive_ingest); one set is sequential.
  unsigned jobs = 1;
  // Render the observed Fig. 6 trace into the report.
  bool print_trace = false;
  // Write the merged graph as Graphviz (single set only); "" = off.
  std::string dot_file;
  // Per-SET resource budget; 0 = unlimited (fdlc --timeout-ms etc.).
  std::uint64_t timeout_ms = 0;
  std::uint64_t budget_steps = 0;
  std::uint64_t budget_mb = 0;
};

struct IngestReport {
  std::string pattern;
  // Observed-mode exit codes: 0 = no deadlock observed (NOT a static
  // guarantee), 1 = the traced execution deadlocked (witness in text),
  // 2 = malformed/unreadable dump, 3 = budget exhausted (unknown).
  int exit_code = 2;
  BudgetStatus budget;  // which limit tripped, when exit_code == 3
  bool deadlock_observed = false;
  // The complete rendered report. Deterministic: built solely from the
  // dump's own stable vertex ids, so it is byte-identical across runs
  // and --jobs settings.
  std::string text;
};

struct IngestCorpusReport {
  std::vector<IngestReport> sets;  // input order, one per pattern
  int exit_code = 0;               // max over sets; 0 for an empty list
};

// Ingests one dump set end-to-end: glob, merge, CSR scan, TJ/KJ, render.
[[nodiscard]] IngestReport ingest_dump_set(const std::string& pattern,
                                           const IngestOptions& options = {});

// Ingests every pattern with `options.jobs`-way parallelism. Reports are
// assembled in input order regardless of completion order.
[[nodiscard]] IngestCorpusReport drive_ingest(
    const std::vector<std::string>& patterns,
    const IngestOptions& options = {});

}  // namespace gtdl::ingest
