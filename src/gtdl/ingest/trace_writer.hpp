// Runtime dependency-trace emission (docs/TRACE_FORMAT.md, version 1).
//
// A TraceDumpWriter records the graph-relevant events of one execution —
// spawn / touch / block / resolve — as JSON-lines records sharded across
// `shards` output files (`BASE.<k>.json`). The record stream is the
// public observed-graph contract: `fdlc --ingest 'BASE.*.json'` merges
// the shards back into a dependency graph and runs the cycle/TJ/KJ
// detectors over it, so a futures runtime in ANY language that can emit
// this format reaches the detectors without a FutLang frontend.
//
// Two in-tree producers drive it:
//   * the FutLang interpreter (fdlc --run --trace-graph BASE), whose
//     canonical schedule makes dumps reproducible byte-for-byte, and
//   * the threaded FutureRuntime (RuntimeOptions::graph_dump, or the
//     GTDL_GRAPH_DUMP environment switch), where concurrent threads
//     record under the writer's own lock.
//
// Semantics the reader relies on (normative statements live in the spec):
//   * `seq` is a process-wide total order over the records of one dump
//     set; shard placement is arbitrary and carries no meaning.
//   * a thread is named by the designated vertex of the future it
//     computes; the root thread ("main" by default) is implicit.
//   * spawn(t, v) introduces vertex v AND thread v; every later record
//     acted by v must carry a larger seq.
//
// Records buffer in memory and hit the filesystem only in flush() — an
// instrumented run pays string-append cost per event, never syscalls.

#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "gtdl/support/symbol.hpp"

namespace gtdl::ingest {

inline constexpr std::uint32_t kTraceVersion = 1;

// Escapes `s` for embedding inside a JSON string literal (quotes not
// included). Shared with the reader's tests.
[[nodiscard]] std::string json_escape(std::string_view s);

class TraceDumpWriter {
 public:
  struct Options {
    // Number of shard files to emit. Every shard file is written (a
    // record-free shard still carries its meta line) so the glob
    // `BASE.*.json` always reassembles the full set.
    unsigned shards = 3;
    // Name of the root (main) thread.
    std::string root = "main";
    // Free-form provenance (program path); recorded in the meta line.
    std::string program;
  };

  // Records land in `base`.<k>.json for k in [0, shards).
  explicit TraceDumpWriter(std::string base);
  TraceDumpWriter(std::string base, Options options);

  // Thread `thread` spawned the future with designated vertex `vertex`.
  void record_spawn(Symbol thread, Symbol vertex);
  // Thread `thread` touched (requested the value of) `vertex`.
  void record_touch(Symbol thread, Symbol vertex);
  // Thread `thread` is blocked waiting on `vertex` (informational).
  void record_block(Symbol thread, Symbol vertex);
  // The future with designated vertex `vertex` completed.
  void record_resolve(Symbol vertex);

  // Writes every shard file. Returns the written paths in shard order;
  // on I/O failure returns what was written so far and sets *error.
  // Idempotent per record: flush() may be called once, at end of run.
  std::vector<std::string> flush(std::string* error = nullptr);

  [[nodiscard]] std::size_t record_count() const;
  [[nodiscard]] unsigned shard_count() const { return options_.shards; }

 private:
  // Shard of `thread`'s records: thread first-appearance ordinal modulo
  // the shard count — deterministic for a deterministic producer, and it
  // scatters parent and child threads across files so ingest always
  // exercises cross-shard stitching.
  std::size_t shard_of(Symbol thread);
  void append(std::size_t shard, std::string_view kind, Symbol thread,
              Symbol vertex);

  mutable std::mutex mu_;
  std::string base_;
  Options options_;
  std::vector<std::string> buffers_;  // one per shard, meta line included
  std::unordered_map<Symbol, std::size_t> thread_ordinal_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace gtdl::ingest
