#include "gtdl/ingest/ingest.hpp"

#include <glob.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gtdl/graph/csr.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/ingest/trace_writer.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/support/string_util.hpp"
#include "gtdl/tj/join_policy.hpp"
#include "gtdl/tj/trace.hpp"

namespace gtdl::ingest {

namespace {

// Stop collecting diagnostics past this many: adversarial dumps should
// produce a bounded report, not megabytes of repeated complaints.
constexpr std::size_t kMaxDiagnostics = 20;

struct IngestMetrics {
  obs::Counter& sets;
  obs::Counter& records;
  obs::Counter& shards;
  obs::Counter& vertices;
  obs::Counter& malformed;

  static IngestMetrics& get() {
    static IngestMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      auto c = [&reg](const char* name, const char* unit,
                      const char* help) -> obs::Counter& {
        return reg.counter(obs::MetricDesc{name, "ingest", unit, help});
      };
      return new IngestMetrics{
          c("ingest.sets", "sets", "dump sets ingested"),
          c("ingest.records", "records", "trace records parsed"),
          c("ingest.shards", "files", "shard files read"),
          c("ingest.vertices", "vertices",
            "vertices in merged observed graphs (CSR lowering)"),
          c("ingest.malformed", "sets", "dump sets rejected as malformed"),
      };
    }();
    return *m;
  }
};

// --- minimal JSON-line parsing ---------------------------------------------
//
// The v1 schema is flat one-line objects with string and nonnegative-
// integer values only (docs/TRACE_FORMAT.md "Record grammar"), which this
// hand-rolled parser accepts STRICTLY: nested values, floats, negative
// numbers and trailing garbage are malformed-dump diagnostics, not
// silently coerced. Unknown KEYS are ignored (the spec's forward-compat
// rule); unknown record kinds are not.

struct JsonField {
  std::string key;
  bool is_string = false;
  std::string str;
  std::uint64_t num = 0;
};

class LineParser {
 public:
  explicit LineParser(std::string_view s) : s_(s) {}

  // Parses the whole line as one flat object. On failure returns false
  // and sets `err` (position included).
  bool parse(std::vector<JsonField>& out, std::string& err) {
    skip_ws();
    if (!eat('{')) return fail(err, "expected '{'");
    skip_ws();
    if (eat('}')) return finish(err);
    for (;;) {
      JsonField field;
      if (!parse_string(field.key, err)) return false;
      skip_ws();
      if (!eat(':')) return fail(err, "expected ':' after key");
      skip_ws();
      if (peek() == '"') {
        field.is_string = true;
        if (!parse_string(field.str, err)) return false;
      } else {
        if (!parse_number(field.num, err)) return false;
      }
      out.push_back(std::move(field));
      skip_ws();
      if (eat(',')) {
        skip_ws();
        continue;
      }
      if (eat('}')) return finish(err);
      return fail(err, "expected ',' or '}'");
    }
  }

 private:
  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool fail(std::string& err, std::string_view what) const {
    err = std::string(what) + " at column " + std::to_string(pos_ + 1);
    return false;
  }
  bool finish(std::string& err) {
    skip_ws();
    if (pos_ != s_.size()) return fail(err, "trailing garbage after '}'");
    return true;
  }

  bool parse_string(std::string& out, std::string& err) {
    if (!eat('"')) return fail(err, "expected '\"'");
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail(err, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail(err, "bad hex digit in \\u escape");
          }
          if (code >= 0xd800 && code <= 0xdfff) {
            return fail(err, "surrogate \\u escapes are not supported");
          }
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return fail(err, "unknown string escape");
      }
    }
    return fail(err, "unterminated string");
  }

  bool parse_number(std::uint64_t& out, std::string& err) {
    if (peek() == '-') return fail(err, "negative numbers are not allowed");
    if (peek() < '0' || peek() > '9') return fail(err, "expected a value");
    std::uint64_t v = 0;
    while (peek() >= '0' && peek() <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(s_[pos_] - '0');
      if (v > (~std::uint64_t{0} - digit) / 10) {
        return fail(err, "integer out of range");
      }
      v = v * 10 + digit;
      ++pos_;
    }
    if (peek() == '.' || peek() == 'e' || peek() == 'E') {
      return fail(err, "floating-point numbers are not allowed");
    }
    out = v;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// --- record stream ----------------------------------------------------------

enum class RecordKind : unsigned char { kSpawn, kTouch, kBlock, kResolve };

struct TraceRecord {
  RecordKind kind = RecordKind::kSpawn;
  std::uint64_t seq = 0;
  Symbol thread;
  Symbol vertex;
  std::uint32_t file = 0;  // index into MergeState::files
  std::uint32_t line = 0;  // 1-based
};

struct ShardMeta {
  std::uint64_t shard = 0;
  std::uint64_t shards = 0;
  std::string root;
};

class Merger {
 public:
  Merger(const std::vector<std::string>& files, Budget* budget)
      : files_(files), budget_(budget) {}

  MergedTrace run() {
    for (std::uint32_t i = 0; i < files_.size() && !give_up(); ++i) {
      parse_file(i);
    }
    if (!result_.budget_exhausted && result_.diags.error_count() == 0) {
      validate_set();
    }
    if (!result_.budget_exhausted && result_.diags.error_count() == 0) {
      stitch();
    }
    result_.shards = files_.size();
    result_.ok = !result_.budget_exhausted &&
                 result_.diags.error_count() == 0 && result_.graph != nullptr;
    return std::move(result_);
  }

 private:
  [[nodiscard]] bool give_up() const {
    return result_.budget_exhausted ||
           result_.diags.error_count() >= kMaxDiagnostics;
  }

  void error_at(std::uint32_t file, std::uint32_t line, std::string msg) {
    if (result_.diags.error_count() >= kMaxDiagnostics) return;
    result_.diags.error(files_[file] + ":" + std::to_string(line) + ": " +
                        std::move(msg));
    if (result_.diags.error_count() == kMaxDiagnostics) {
      result_.diags.error("too many malformed records; giving up");
    }
  }

  bool checkpoint() {
    if (budget_ != nullptr && budget_->checkpoint()) {
      result_.budget_exhausted = true;
      return true;
    }
    return false;
  }

  static const JsonField* find(const std::vector<JsonField>& fields,
                               std::string_view key) {
    for (const JsonField& f : fields) {
      if (f.key == key) return &f;
    }
    return nullptr;
  }

  // Returns false (after diagnosing) unless `key` exists with the
  // expected type; strings must additionally be nonempty.
  bool require(const std::vector<JsonField>& fields, std::string_view key,
               bool string, std::uint32_t file, std::uint32_t line,
               const JsonField*& out) {
    out = find(fields, key);
    if (out == nullptr) {
      error_at(file, line, "missing required field '" + std::string(key) + "'");
      return false;
    }
    if (out->is_string != string) {
      error_at(file, line, "field '" + std::string(key) + "' must be a " +
                               (string ? "string" : "nonnegative integer"));
      return false;
    }
    if (string && out->str.empty()) {
      error_at(file, line, "field '" + std::string(key) + "' must be nonempty");
      return false;
    }
    return true;
  }

  void parse_file(std::uint32_t file) {
    std::ifstream in(files_[file], std::ios::binary);
    if (!in) {
      error_at(file, 0, "cannot open shard file");
      return;
    }
    std::string line;
    std::uint32_t lineno = 0;
    bool saw_meta = false;
    while (std::getline(in, line)) {
      ++lineno;
      if (checkpoint() || give_up()) return;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      std::vector<JsonField> fields;
      std::string err;
      if (!LineParser(line).parse(fields, err)) {
        error_at(file, lineno, "malformed JSON record: " + err);
        continue;
      }
      const JsonField* kind = nullptr;
      if (!require(fields, "kind", true, file, lineno, kind)) continue;
      if (const JsonField* version = find(fields, "trace_version");
          version != nullptr &&
          (version->is_string || version->num != kTraceVersion)) {
        error_at(file, lineno,
                 "unsupported trace_version (this reader speaks version " +
                     std::to_string(kTraceVersion) + ")");
        continue;
      }
      if (kind->str == "meta") {
        if (saw_meta) {
          error_at(file, lineno, "duplicate meta record in shard");
          continue;
        }
        if (lineno != 1) {
          error_at(file, lineno, "meta record must be the first line");
          continue;
        }
        saw_meta = true;
        parse_meta(fields, file, lineno);
        continue;
      }
      if (!saw_meta) {
        error_at(file, lineno,
                 "first record of a shard must be the meta record");
        return;
      }
      parse_event(fields, *kind, file, lineno);
    }
    if (!saw_meta && result_.diags.error_count() == 0) {
      error_at(file, lineno, "shard file has no meta record");
    }
  }

  void parse_meta(const std::vector<JsonField>& fields, std::uint32_t file,
                  std::uint32_t lineno) {
    const JsonField* version = nullptr;
    const JsonField* shard = nullptr;
    const JsonField* shards = nullptr;
    const JsonField* root = nullptr;
    if (!require(fields, "trace_version", false, file, lineno, version) ||
        !require(fields, "shard", false, file, lineno, shard) ||
        !require(fields, "shards", false, file, lineno, shards) ||
        !require(fields, "root", true, file, lineno, root)) {
      return;
    }
    if (shards->num == 0 || shard->num >= shards->num) {
      error_at(file, lineno,
               "shard index " + std::to_string(shard->num) +
                   " out of range for " + std::to_string(shards->num) +
                   " shards");
      return;
    }
    metas_.emplace_back(file,
                        ShardMeta{shard->num, shards->num, root->str});
  }

  void parse_event(const std::vector<JsonField>& fields, const JsonField& kind,
                   std::uint32_t file, std::uint32_t lineno) {
    RecordKind rk;
    if (kind.str == "spawn") rk = RecordKind::kSpawn;
    else if (kind.str == "touch") rk = RecordKind::kTouch;
    else if (kind.str == "block") rk = RecordKind::kBlock;
    else if (kind.str == "resolve") rk = RecordKind::kResolve;
    else {
      error_at(file, lineno, "unknown record kind '" + kind.str + "'");
      return;
    }
    const JsonField* seq = nullptr;
    const JsonField* thread = nullptr;
    const JsonField* vertex = nullptr;
    if (!require(fields, "seq", false, file, lineno, seq) ||
        !require(fields, "thread", true, file, lineno, thread) ||
        !require(fields, "vertex", true, file, lineno, vertex)) {
      return;
    }
    records_.push_back(TraceRecord{rk, seq->num, Symbol::intern(thread->str),
                                   Symbol::intern(vertex->str), file, lineno});
  }

  // Cross-shard consistency: every declared shard present exactly once,
  // all meta lines agreeing on the set shape, no colliding seq numbers.
  void validate_set() {
    if (metas_.empty()) return;
    const ShardMeta& first = metas_.front().second;
    std::vector<std::uint32_t> seen_shard(first.shards, 0xffffffffu);
    for (const auto& [file, meta] : metas_) {
      if (meta.shards != first.shards || meta.root != first.root) {
        error_at(file, 1,
                 "shard disagrees with '" + files_[metas_.front().first] +
                     "' about the dump set (shards/root mismatch — are these "
                     "files from the same run?)");
        return;
      }
      if (meta.shard < seen_shard.size() &&
          seen_shard[meta.shard] != 0xffffffffu) {
        error_at(file, 1,
                 "duplicate shard index " + std::to_string(meta.shard) +
                     " (also in '" + files_[seen_shard[meta.shard]] + "')");
        return;
      }
      seen_shard[meta.shard] = file;
    }
    if (metas_.size() != first.shards) {
      error_at(metas_.front().first, 1,
               "dump set declares " + std::to_string(first.shards) +
                   " shards but " + std::to_string(metas_.size()) +
                   " matched the pattern (incomplete set?)");
      return;
    }
    result_.root = Symbol::intern(first.root);
    std::stable_sort(records_.begin(), records_.end(),
                     [](const TraceRecord& a, const TraceRecord& b) {
                       return a.seq < b.seq;
                     });
    for (std::size_t i = 1; i < records_.size(); ++i) {
      if (records_[i].seq == records_[i - 1].seq) {
        const TraceRecord& dup = records_[i];
        const TraceRecord& prev = records_[i - 1];
        error_at(dup.file, dup.line,
                 "duplicate seq " + std::to_string(dup.seq) + " (first at " +
                     files_[prev.file] + ":" + std::to_string(prev.line) +
                     ")");
        return;
      }
    }
  }

  // Walks the merged stream in seq order, checks the actor/spawn rules,
  // and groups each thread's structural actions; then rebuilds the
  // GraphExpr from the root down — the cross-shard edge stitching.
  void stitch() {
    struct ThreadActions {
      // spawn child (child thread id) or touch (vertex id).
      struct Act {
        bool is_spawn = false;
        Symbol vertex;
      };
      std::vector<Act> acts;
    };
    std::unordered_map<Symbol, ThreadActions> threads;
    std::unordered_map<Symbol, const TraceRecord*> spawned;
    OrderedSet<Symbol> futures;
    if (result_.root == Symbol{}) result_.root = Symbol::intern("main");
    threads.emplace(result_.root, ThreadActions{});
    for (const TraceRecord& rec : records_) {
      if (checkpoint() || give_up()) return;
      // The actor must exist by now: the root, or a future whose spawn
      // has a smaller seq. A violation is the "dangling edge" class of
      // malformed dump — a record stitched to nothing.
      if (rec.thread != result_.root &&
          spawned.find(rec.thread) == spawned.end()) {
        error_at(rec.file, rec.line,
                 "record acted by thread '" + rec.thread.str() +
                     "' before (or without) its spawn — dangling record");
        continue;
      }
      switch (rec.kind) {
        case RecordKind::kSpawn: {
          if (rec.vertex == result_.root) {
            error_at(rec.file, rec.line,
                     "the root thread '" + rec.vertex.str() +
                         "' cannot be spawned");
            continue;
          }
          const auto [it, inserted] = spawned.emplace(rec.vertex, &rec);
          if (!inserted) {
            const TraceRecord& prev = *it->second;
            error_at(rec.file, rec.line,
                     "duplicate spawn of vertex '" + rec.vertex.str() +
                         "' (first at " + files_[prev.file] + ":" +
                         std::to_string(prev.line) + ")");
            continue;
          }
          futures.insert(rec.vertex);
          threads.emplace(rec.vertex, ThreadActions{});
          threads[rec.thread].acts.push_back({true, rec.vertex});
          break;
        }
        case RecordKind::kTouch:
          futures.insert(rec.vertex);
          threads[rec.thread].acts.push_back({false, rec.vertex});
          break;
        case RecordKind::kBlock:
          // Informational (a touch that actually blocked); the waits-for
          // edge is already in the graph via its touch record.
          break;
        case RecordKind::kResolve:
          if (spawned.find(rec.vertex) == spawned.end()) {
            error_at(rec.file, rec.line,
                     "resolve of vertex '" + rec.vertex.str() +
                         "' which is never spawned");
          }
          break;
      }
    }
    if (result_.budget_exhausted || result_.diags.error_count() != 0) return;

    // Rebuild bottom-up in reverse spawn-seq order: a spawn acted by
    // thread T carries a larger seq than T's own spawn, so walking
    // spawns largest-seq-first assembles every child before the thread
    // that spawned it. No recursion — adversarially deep nesting costs
    // a vector, not stack frames.
    std::vector<std::pair<Symbol, const TraceRecord*>> order(spawned.begin(),
                                                             spawned.end());
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) {
                return a.second->seq > b.second->seq;
              });
    std::unordered_map<Symbol, GraphExprPtr> built;
    const auto freeze = [&](Symbol thread) -> GraphExprPtr {
      const ThreadActions& t = threads[thread];
      std::vector<GraphExprPtr> pieces;
      pieces.reserve(t.acts.size());
      for (const ThreadActions::Act& act : t.acts) {
        if (act.is_spawn) {
          pieces.push_back(ge::spawn(built.at(act.vertex), act.vertex));
        } else {
          pieces.push_back(ge::touch(act.vertex));
        }
      }
      return pieces.empty() ? ge::singleton() : ge::seq_all(std::move(pieces));
    };
    for (const auto& [vertex, rec] : order) {
      if (checkpoint()) return;
      (void)rec;
      built.emplace(vertex, freeze(vertex));
    }
    result_.graph = freeze(result_.root);
    result_.records = records_.size();
    result_.threads = 1 + spawned.size();
    result_.futures = futures.size();
  }

  const std::vector<std::string>& files_;
  Budget* budget_;
  MergedTrace result_;
  std::vector<std::pair<std::uint32_t, ShardMeta>> metas_;
  std::vector<TraceRecord> records_;
};

}  // namespace

std::vector<std::string> expand_dump_glob(const std::string& pattern,
                                          std::string* error) {
  glob_t g{};
  const int rc = ::glob(pattern.c_str(), 0, nullptr, &g);
  std::vector<std::string> files;
  if (rc == 0) {
    files.assign(g.gl_pathv, g.gl_pathv + g.gl_pathc);
  } else if (rc == GLOB_NOMATCH) {
    if (error != nullptr) *error = "no files match '" + pattern + "'";
  } else {
    if (error != nullptr) *error = "glob failed for '" + pattern + "'";
  }
  ::globfree(&g);
  std::sort(files.begin(), files.end());
  return files;
}

MergedTrace merge_trace_dumps(const std::vector<std::string>& files,
                              Budget* budget) {
  MergedTrace merged = Merger(files, budget).run();
  IngestMetrics::get().shards.add(merged.shards);
  IngestMetrics::get().records.add(merged.records);
  if (!merged.ok && !merged.budget_exhausted) {
    IngestMetrics::get().malformed.add();
  }
  return merged;
}

namespace {

// Renders the designated (named) vertices of a CSR cycle in cycle order.
// Every observed cycle passes through at least one designated vertex —
// the only back edges the Fig. 2 lowering produces start at one.
std::string render_cycle(const CsrGraph& csr,
                         const std::vector<VertexId>& cycle) {
  std::vector<std::string> names;
  for (const VertexId v : cycle) {
    if (csr.is_designated(v)) names.push_back(csr.symbol_of(v).str());
  }
  if (names.empty()) {
    return "(cycle of " + std::to_string(cycle.size()) +
           " interior vertices)";
  }
  names.push_back(names.front());  // close the loop visually
  return join(names, " -> ", [](const std::string& s) { return s; });
}

}  // namespace

IngestReport ingest_dump_set(const std::string& pattern,
                             const IngestOptions& options) {
  obs::Span span("ingest", "ingest_dump_set");
  IngestMetrics::get().sets.add();
  IngestReport report;
  report.pattern = pattern;

  std::string glob_error;
  const std::vector<std::string> files =
      expand_dump_glob(pattern, &glob_error);
  if (files.empty()) {
    report.exit_code = 2;
    report.text = "error: " + glob_error + "\n";
    IngestMetrics::get().malformed.add();
    return report;
  }

  std::optional<Budget> budget;
  if (options.timeout_ms != 0 || options.budget_steps != 0 ||
      options.budget_mb != 0) {
    Budget::Limits limits;
    limits.deadline_ms = options.timeout_ms;
    limits.max_steps = options.budget_steps;
    limits.max_bytes = options.budget_mb * 1024 * 1024;
    budget.emplace(limits);
  }

  MergedTrace merged =
      merge_trace_dumps(files, budget ? &*budget : nullptr);
  if (merged.budget_exhausted) {
    report.exit_code = 3;
    report.budget = budget->status();
    // Like the static give-up lines, no counts: byte-identical whenever
    // the same limit trips, whatever was merged before it did.
    report.text =
        "observed analysis: UNKNOWN (" + report.budget.render() + ")\n";
    return report;
  }
  if (!merged.ok) {
    report.exit_code = 2;
    report.text = merged.diags.render();
    return report;
  }

  std::ostringstream out;
  out << "ingested " << merged.shards << " shards (" << merged.records
      << " records, " << merged.threads << " threads, " << merged.futures
      << " futures)\n";

  // The merged graph goes through the same arena-backed CSR layer the
  // static detectors scan (csr.hpp): dense ids, flat adjacency, bitset
  // marks.
  GraphArena arena;
  const CsrGraph csr = lower_to_csr(*merged.graph, arena);
  IngestMetrics::get().vertices.add(csr.vertex_count());
  const std::optional<std::vector<VertexId>> cycle = csr.find_cycle();
  const std::vector<Symbol>& unspawned = csr.unspawned_touches();
  const bool deadlock = cycle.has_value() || !unspawned.empty();
  out << "observed graph: "
      << (deadlock ? "contains a deadlock" : "deadlock-free") << " ("
      << csr.vertex_count() << " vertices, " << csr.edge_count()
      << " edges)\n";
  if (cycle.has_value()) {
    out << "  witness (observed cyclic wait): " << render_cycle(csr, *cycle)
        << "\n";
  }
  for (const Symbol& v : unspawned) {
    out << "  witness (touch of never-spawned future): " << v.str() << "\n";
  }

  const Trace trace = trace_with_init(*merged.graph, merged.root);
  const TraceVerdict tj = check_transitive_joins(trace);
  const TraceVerdict kj = check_known_joins(trace);
  out << "transitive joins (observed): "
      << (tj.valid ? "valid" : "INVALID: " + tj.reason) << "\n";
  out << "known joins (observed): "
      << (kj.valid ? "valid" : "INVALID: " + kj.reason) << "\n";
  if (options.print_trace) {
    out << "trace: " << to_string(trace) << "\n";
  }
  if (!options.dot_file.empty()) {
    const Graph graph = lower_to_graph(*merged.graph);
    std::ofstream dot(options.dot_file);
    dot << graph.to_dot("observed");
    out << "wrote " << options.dot_file << "\n";
  }
  // The observed verdict is about ONE execution. The wording (and the
  // README exit-code table) keeps it apart from the static analysis:
  // exit 0 here is weaker than the kind system's DEADLOCK-FREE.
  if (deadlock) {
    out << "observed verdict: DEADLOCK OBSERVED (this execution deadlocked "
           "or can never complete)\n";
  } else {
    out << "observed verdict: NO DEADLOCK OBSERVED (one execution only — "
           "not a deadlock-freedom proof)\n";
  }
  report.deadlock_observed = deadlock;
  report.exit_code = deadlock ? 1 : 0;
  report.text = out.str();
  return report;
}

IngestCorpusReport drive_ingest(const std::vector<std::string>& patterns,
                                const IngestOptions& options) {
  obs::Span span("ingest", "drive_ingest");
  IngestCorpusReport corpus;
  corpus.sets.resize(patterns.size());
  const unsigned jobs = std::max(
      1u, std::min<unsigned>(options.jobs,
                             static_cast<unsigned>(patterns.size())));
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= patterns.size()) return;
      corpus.sets[i] = ingest_dump_set(patterns[i], options);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(jobs - 1);
  for (unsigned t = 1; t < jobs; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& t : threads) t.join();
  for (const IngestReport& set : corpus.sets) {
    corpus.exit_code = std::max(corpus.exit_code, set.exit_code);
  }
  return corpus;
}

}  // namespace gtdl::ingest
