// Parallel analysis engine: work-pooled Norm_n over the interned DAG.
//
// PR 1's hash-consed graph-type core made every node immutable with a
// stable 64-bit id, which makes Norm_n subproblems at distinct
// (node id, fuel) keys independent: they share no mutable state beyond
// the process-wide interners (which are internally synchronized). The
// Engine collects the payoff — it evaluates the normalization recursion
// as a task DAG over a fixed-size work-stealing thread pool:
//
//   * a node's expensive children are submitted as claimable subtasks
//     (thread_pool.hpp); the parent joins them by claim-back-or-block,
//     which is deadlock-free because subproblem dependencies strictly
//     decrease the well-founded lexicographic measure (fuel, term size);
//   * results join through a SHARDED memo table keyed on (id, fuel):
//     the first thread to need a key computes it, later threads block on
//     that key's cell and then reuse the stored result;
//   * the ν-bound fresh-name refresh applied on every memo reuse stays
//     thread-confined exactly as in the sequential normalizer — the
//     renaming map is local to the reusing thread, and Symbol::fresh is
//     the only shared touch point (internally synchronized).
//
// Determinism: for workloads that complete within the limits, the engine
// produces graphs pairwise alpha-equal to the sequential normalizer's, in
// the same order (result assembly is order-preserving regardless of task
// completion timing; only the fresh-name spellings differ). Workloads
// that trip max_steps/max_graphs report truncation just like the
// sequential path, but the surviving subset may differ with thread count
// (the step counter is a global atomic, so the trip point depends on
// interleaving).
//
// An Engine with threads() == 1 creates no pool and routes normalize()
// through gtdl::normalize — the sequential code path, byte for byte.

#pragma once

#include <memory>

#include "gtdl/gtype/gtype.hpp"
#include "gtdl/gtype/normalize.hpp"

namespace gtdl {

class ThreadPool;

class Engine {
 public:
  // `threads` is the total parallelism of one query: the calling thread
  // plus threads-1 pool workers. 0 is normalized to 1.
  explicit Engine(unsigned threads);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] unsigned threads() const noexcept;

  // Norm_n(g) with the semantics of gtdl::normalize (same limits, same
  // truncation reporting). threads() == 1 IS gtdl::normalize.
  [[nodiscard]] NormalizeResult normalize(const GTypePtr& g, unsigned depth,
                                          const NormalizeLimits& limits = {});

  // The underlying pool, for file-level fan-out (corpus.hpp) and two-way
  // forks inside detection queries. Null when threads() == 1.
  [[nodiscard]] ThreadPool* pool() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gtdl
