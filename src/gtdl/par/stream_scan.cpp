#include "gtdl/par/stream_scan.hpp"

#include <algorithm>
#include <mutex>

#include "gtdl/graph/csr.hpp"
#include "gtdl/par/thread_pool.hpp"

namespace gtdl {

GroundDeadlockScanner::GroundDeadlockScanner(const Options& options)
    : options_(options) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  batch_.reserve(options_.batch_size);
}

bool GroundDeadlockScanner::push(GraphExprPtr graph) {
  if (found_) return false;
  batch_.push_back(std::move(graph));
  ++pushed_;
  if (batch_.size() >= options_.batch_size) flush();
  return !found_;
}

void GroundDeadlockScanner::finish() {
  if (!found_ && !batch_.empty()) flush();
}

void GroundDeadlockScanner::flush() {
  const bool parallel = options_.pool != nullptr && batch_.size() > 1;
  if (parallel) {
    flush_parallel();
  } else {
    flush_sequential();
  }
  batch_start_ += batch_.size();
  batch_.clear();
}

void GroundDeadlockScanner::flush_sequential() {
  for (const GraphExprPtr& graph : batch_) {
    const GroundDeadlock verdict = find_ground_deadlock(*graph, arena_);
    if (verdict.any()) {
      found_ = true;
      verdict_ = verdict;
      offending_ = graph;
      return;
    }
  }
}

void GroundDeadlockScanner::flush_parallel() {
  // Chunked min-index reduction (the shape gml_baseline's materialized
  // scan used): a task amortizes its sync cell over many cheap scans and
  // the winner is the smallest batch index — exactly what the sequential
  // early-exit loop reports. Workers use the thread_local arena inside
  // find_ground_deadlock, so no scan state is shared.
  const std::size_t chunks = std::min<std::size_t>(
      batch_.size(), static_cast<std::size_t>(options_.threads) * 4);
  const std::size_t chunk_len = (batch_.size() + chunks - 1) / chunks;
  std::mutex mu;
  std::size_t best = batch_.size();
  GroundDeadlock best_verdict;
  {
    TaskGroup group(*options_.pool);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * chunk_len;
      const std::size_t end = std::min(begin + chunk_len, batch_.size());
      if (begin >= end) break;
      group.run([&, begin, end] {
        for (std::size_t i = begin; i < end; ++i) {
          {
            // A hit in an earlier chunk makes this whole chunk moot.
            std::lock_guard lock(mu);
            if (best <= begin) return;
          }
          const GroundDeadlock verdict = find_ground_deadlock(*batch_[i]);
          if (verdict.any()) {
            std::lock_guard lock(mu);
            if (i < best) {
              best = i;
              best_verdict = verdict;
            }
            return;  // later graphs in this chunk cannot beat index i
          }
        }
      });
    }
    group.wait();
  }
  if (best < batch_.size()) {
    found_ = true;
    verdict_ = best_verdict;
    offending_ = batch_[best];
  }
}

}  // namespace gtdl
