#include "gtdl/par/stream_scan.hpp"

#include <algorithm>
#include <mutex>

#include "gtdl/graph/csr.hpp"
#include "gtdl/par/thread_pool.hpp"
#include "gtdl/support/budget.hpp"

namespace gtdl {

GroundDeadlockScanner::GroundDeadlockScanner(const Options& options)
    : options_(options) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  batch_.reserve(options_.batch_size);
}

bool GroundDeadlockScanner::push(GraphExprPtr graph) {
  if (found_ || aborted_) return false;
  batch_.push_back(std::move(graph));
  ++pushed_;
  if (batch_.size() >= options_.batch_size) flush();
  return !found_ && !aborted_;
}

void GroundDeadlockScanner::finish() {
  if (!found_ && !aborted_ && !batch_.empty()) flush();
}

void GroundDeadlockScanner::flush() {
  // Batch-boundary budget poll: one step per buffered graph. A tripped
  // budget abandons the batch unscanned (the stream is cut at a batch
  // boundary, preserving the determinism unit) and drops the scan
  // scratch so an aborted analysis does not pin its high-water memory.
  if (options_.budget != nullptr &&
      options_.budget->checkpoint(batch_.size())) {
    aborted_ = true;
    release_scan_arena();
    batch_.clear();
    return;
  }
  const bool parallel = options_.pool != nullptr && batch_.size() > 1;
  if (parallel) {
    flush_parallel();
  } else {
    flush_sequential();
  }
  batch_start_ += batch_.size();
  batch_.clear();
  if (options_.budget != nullptr && !found_ &&
      options_.budget->exhausted()) {
    aborted_ = true;
    release_scan_arena();
  }
}

void GroundDeadlockScanner::flush_sequential() {
  // The whole batch runs on this thread's scan arena: one marks/rows
  // allocation amortized over every graph in the batch, and — because
  // the arena is thread_local rather than scanner-owned — still warm
  // for the next scanner this thread constructs (the next corpus file).
  for (const GraphExprPtr& graph : batch_) {
    const GroundDeadlock verdict = find_ground_deadlock(*graph);
    if (verdict.any()) {
      found_ = true;
      verdict_ = verdict;
      offending_ = graph;
      return;
    }
  }
  // Charge the scan scratch against the memory limit once per batch (the
  // arena only grows at lowering time, so per-batch granularity is
  // exact enough); a trip surfaces as aborted_ in flush().
  if (options_.budget != nullptr) {
    options_.budget->check_memory(scan_arena_bytes());
  }
  trim_scan_arena(options_.arena_trim_bytes);
}

void GroundDeadlockScanner::flush_parallel() {
  // Chunked min-index reduction (the shape gml_baseline's materialized
  // scan used): a task amortizes its sync cell over many cheap scans and
  // the winner is the smallest batch index — exactly what the sequential
  // early-exit loop reports. Workers use the thread_local arena inside
  // find_ground_deadlock, so no scan state is shared.
  const std::size_t chunks = std::min<std::size_t>(
      batch_.size(), static_cast<std::size_t>(options_.threads) * 4);
  const std::size_t chunk_len = (batch_.size() + chunks - 1) / chunks;
  std::mutex mu;
  std::size_t best = batch_.size();
  GroundDeadlock best_verdict;
  {
    TaskGroup group(*options_.pool);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * chunk_len;
      const std::size_t end = std::min(begin + chunk_len, batch_.size());
      if (begin >= end) break;
      group.run([&, begin, end] {
        // Cancelled mid-batch: drop this worker's arena and bail. The
        // batch result is discarded by flush() anyway (aborted_), so
        // skipping graphs here cannot change a reported verdict.
        if (options_.budget != nullptr && options_.budget->exhausted()) {
          release_scan_arena();
          return;
        }
        for (std::size_t i = begin; i < end; ++i) {
          {
            // A hit in an earlier chunk makes this whole chunk moot.
            std::lock_guard lock(mu);
            if (best <= begin) return;
          }
          const GroundDeadlock verdict = find_ground_deadlock(*batch_[i]);
          if (verdict.any()) {
            std::lock_guard lock(mu);
            if (i < best) {
              best = i;
              best_verdict = verdict;
            }
            return;  // later graphs in this chunk cannot beat index i
          }
        }
        // Per-worker memory charge: peak tracking is a max across
        // threads, matching the "largest single arena" the budget means
        // to bound.
        if (options_.budget != nullptr) {
          options_.budget->check_memory(scan_arena_bytes());
        }
        // Pool workers outlive this scan; keep their arenas warm for the
        // next batch/file but never above the retention cap.
        trim_scan_arena(options_.arena_trim_bytes);
      });
    }
    group.wait();
  }
  if (best < batch_.size()) {
    found_ = true;
    verdict_ = best_verdict;
    offending_ = batch_[best];
  }
}

}  // namespace gtdl
