// Batched whole-corpus deadlock checking.
//
// drive_corpus() analyzes a list of input files — FutLang (.fut), MiniML
// (.mml) or textual graph types (.gt / anything else) — concurrently over
// ONE shared Engine and therefore one shared interner: structurally
// identical subterms across files intern to the same node, so analyses of
// later files reuse facts (and, within a normalize call, memo entries)
// established while checking earlier ones.
//
// Scheduling: each file is a claimable task on the engine's pool (see
// thread_pool.hpp); within a file, the detect layer additionally overlaps
// its passes through the same engine. With a 1-thread engine the files
// run strictly sequentially on the calling thread — the same code path,
// task by task.
//
// Determinism: every file's report (rendered text, verdict, exit code) is
// independent of the number of jobs — per-file analysis shares only
// immutable interned state with its siblings, and output is assembled in
// input order, never in completion order. The corpus-level exit code is
// the MAXIMUM of the per-file codes (so one compile error dominates
// deadlock reports, which dominate clean runs — the fdlc convention).

#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "gtdl/gtype/gtype.hpp"
#include "gtdl/par/engine.hpp"
#include "gtdl/support/budget.hpp"

namespace gtdl {

struct CorpusOptions {
  // Total worker parallelism (calling thread included). 0 → 1.
  unsigned jobs = 1;
  // Forwarded to every file's analysis, as the identically named fdlc
  // flags would be.
  bool new_push = true;
  unsigned max_iters = 2;
  bool baseline = false;
  unsigned unrolls = 2;
  bool dump_gtype = false;
  // Per-FILE resource budget (each file gets a fresh Budget); 0 means
  // unlimited. Mirrors fdlc --timeout-ms / --budget-steps / --budget-mb.
  // A tripped budget yields a partial report with exit code 3 (unknown).
  std::uint64_t timeout_ms = 0;
  std::uint64_t budget_steps = 0;
  std::uint64_t budget_mb = 0;
};

struct FileReport {
  std::string path;
  // fdlc convention: 0 = deadlock-free, 1 = possible deadlock reported,
  // 2 = could not read/compile the file, 3 = analysis gave up (resource
  // budget exhausted; the report is partial, the verdict unknown).
  int exit_code = 2;
  // Which limit tripped, when exit_code == 3 (reason == kNone otherwise).
  BudgetStatus budget;
  // The complete rendered per-file report, ready to print. Deterministic
  // up to fresh-name spellings (which never appear in verdicts).
  std::string text;
};

struct CorpusReport {
  std::vector<FileReport> files;  // input order, one entry per input
  int exit_code = 0;              // max over files; 0 for an empty corpus
};

// Analyzes every file with `options.jobs`-way parallelism. The Engine is
// constructed internally; use the lower-level detect APIs directly to
// share an engine across calls.
[[nodiscard]] CorpusReport drive_corpus(const std::vector<std::string>& files,
                                        const CorpusOptions& options = {});

// Single-file front half shared with the fdlc driver: reads, compiles
// (dispatching on extension) and analyzes one input through `engine`
// (which may be null for the sequential path).
[[nodiscard]] FileReport analyze_file(const std::string& path,
                                      const CorpusOptions& options,
                                      Engine* engine);

// The compile phase of analyze_file, split out so the daemon's two-level
// cache (service/) can redo a cheap compile while replaying a cached
// analysis block for an unchanged graph type. `header` carries the
// "compiled ..." report lines (or the complete error text when `gtype`
// is null, which maps to exit code 2). Textual graph types (.gt) have an
// empty header.
struct CompiledInput {
  GTypePtr gtype;      // null when compilation/parsing failed
  std::string header;  // report prefix emitted by the compile phase
};
[[nodiscard]] CompiledInput compile_input(const std::string& path,
                                          const std::string& source,
                                          const CorpusOptions& options);

// The analysis back half: renders the WF/DF verdict block (and optional
// baseline) for an already-compiled graph type into `out` and returns
// the exit code. `budget` may be null (unlimited); a tripped budget
// yields 3 and fills *budget_out. The rendered block is a deterministic
// function of (gtype, options) — byte-identical across --jobs settings
// and repeat runs — which is what makes it cacheable.
[[nodiscard]] int analyze_gtype_report(const GTypePtr& gtype,
                                       const CorpusOptions& options,
                                       Engine* engine, Budget* budget,
                                       std::ostringstream& out,
                                       BudgetStatus* budget_out);

}  // namespace gtdl
