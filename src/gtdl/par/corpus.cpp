#include "gtdl/par/corpus.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <string_view>
#include <utility>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/parse.hpp"
#include "gtdl/gtype/wellformed.hpp"
#include "gtdl/mml/driver.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/par/thread_pool.hpp"

namespace gtdl {

namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool has_extension(const std::string& path, const char* ext) {
  const std::string_view suffix(ext);
  return path.size() > suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

// Builds the per-file Budget limits from the corpus options.
Budget::Limits budget_limits(const CorpusOptions& options) {
  Budget::Limits limits;
  limits.deadline_ms = options.timeout_ms;
  limits.max_steps = options.budget_steps;
  limits.max_bytes = options.budget_mb * 1024 * 1024;
  return limits;
}

bool has_budget(const CorpusOptions& options) {
  return options.timeout_ms != 0 || options.budget_steps != 0 ||
         options.budget_mb != 0;
}

}  // namespace

// The fdlc analysis block, rendered into `out` instead of stdout so a
// concurrently analyzed corpus can still print file reports in input
// order. `budget` is the per-file budget (null when unlimited); a trip
// yields exit 3 and fills *budget_out. Budget-exhausted lines
// deliberately exclude counts (elapsed ms, graphs scanned) so verdict
// text is byte-identical across runs and --jobs settings.
int analyze_gtype_report(const GTypePtr& gtype, const CorpusOptions& options,
                         Engine* engine, Budget* budget,
                         std::ostringstream& out, BudgetStatus* budget_out) {
  const auto give_up = [&](const char* stage) {
    if (budget != nullptr && budget_out != nullptr) {
      *budget_out = budget->status();
    }
    out << stage << ": UNKNOWN ("
        << (budget != nullptr ? budget->status().render()
                              : std::string("budget exhausted"))
        << ")\n";
    return 3;
  };
  if (options.dump_gtype) {
    out << "graph type: " << to_string(gtype) << "\n";
  }
  const WellformedResult wf = check_wellformed(gtype, budget);
  if (wf.budget_exhausted) return give_up("well-formedness");
  if (!wf.ok) {
    out << "well-formedness: REJECTED\n" << wf.diags.render();
    return 1;
  }
  out << "well-formedness: ok (kind " << to_string(wf.kind) << ")\n";

  DetectOptions detect;
  detect.new_pushing = options.new_push;
  detect.engine = engine;
  detect.budget = budget;
  const DeadlockVerdict verdict = check_deadlock_freedom(gtype, detect);
  if (verdict.verdict == Verdict::kUnknown) {
    return give_up("deadlock analysis");
  }
  if (options.dump_gtype && options.new_push) {
    out << "after new pushing: " << to_string(verdict.analyzed) << "\n";
  }
  if (verdict.deadlock_free) {
    out << "deadlock analysis: DEADLOCK-FREE (accepted)\n";
  } else {
    out << "deadlock analysis: POSSIBLE DEADLOCK (rejected)\n"
        << verdict.diags.render();
  }

  int code = verdict.deadlock_free ? 0 : 1;
  if (options.baseline) {
    GmlBaselineOptions baseline_options;
    baseline_options.unrolls_per_binding = options.unrolls;
    baseline_options.engine = engine;
    baseline_options.limits.budget = budget;
    if (budget != nullptr) {
      // With an explicit resource budget the budget governs, not the
      // static enumeration caps — otherwise a cap would silently
      // truncate long before the user's deadline and report a bogus
      // "deadlock-free" over a tiny prefix.
      baseline_options.limits.max_graphs = static_cast<std::size_t>(-1);
      baseline_options.limits.max_steps = static_cast<std::size_t>(-1);
    }
    const GmlBaselineReport report =
        gml_baseline_check(gtype, baseline_options);
    if (report.unknown) {
      if (budget_out != nullptr) *budget_out = report.budget;
      out << "gml baseline (" << report.unrolls_per_binding
          << " unrolls/binding): UNKNOWN (" << report.budget.render()
          << ")\n";
      // A definite DF rejection stands; a clean DF verdict is demoted to
      // unknown because the baseline scan never finished.
      if (code == 0) code = 3;
      return code;
    }
    out << "gml baseline (" << report.unrolls_per_binding
        << " unrolls/binding, " << report.graphs_checked << " graphs"
        << (report.truncated ? ", TRUNCATED" : "") << "): "
        << (report.deadlock_reported ? "reports deadlock"
                                     : "reports deadlock-free")
        << "\n";
    if (report.deadlock_reported) {
      out << "  witness: " << report.witness << "\n";
    }
  }
  return code;
}

CompiledInput compile_input(const std::string& path,
                            const std::string& source,
                            const CorpusOptions& options) {
  CompiledInput result;
  DiagnosticEngine diags;
  InferOptions infer_options;
  infer_options.max_signature_iterations = options.max_iters;
  std::ostringstream header;
  if (has_extension(path, ".mml")) {
    auto compiled = mml::compile_mml(source, diags, infer_options);
    if (!compiled) {
      header << "compilation failed\n" << diags.render();
      result.header = header.str();
      return result;
    }
    header << "compiled " << path << " (MiniML, "
           << compiled->program.defs.size() << " definitions)\n";
    result.gtype = compiled->inferred.program_gtype;
  } else if (has_extension(path, ".fut")) {
    auto compiled = compile_futlang(source, diags, infer_options);
    if (!compiled) {
      header << "compilation failed\n" << diags.render();
      result.header = header.str();
      return result;
    }
    header << "compiled " << path << " ("
           << compiled->program.functions.size() << " functions)\n";
    result.gtype = compiled->inferred.program_gtype;
  } else {
    // Anything else is a textual graph type (.gt by convention).
    result.gtype = parse_gtype(source, diags);
    if (result.gtype == nullptr) {
      header << "graph type parse error\n" << diags.render();
    }
  }
  result.header = header.str();
  return result;
}

namespace {

struct CorpusMetrics {
  obs::Counter& files;
  obs::Counter& errors;

  static CorpusMetrics& get() {
    static CorpusMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      return new CorpusMetrics{
          reg.counter(obs::MetricDesc{"corpus.files", "corpus", "files",
                                      "files analyzed in corpus mode"}),
          reg.counter(obs::MetricDesc{
              "corpus.errors", "corpus", "files",
              "corpus files that failed to open, compile, or parse"}),
      };
    }();
    return *m;
  }
};

FileReport analyze_file_unguarded(const std::string& path,
                                  const CorpusOptions& options,
                                  Engine* engine) {
  FileReport report;
  report.path = path;
  std::ostringstream out;
  obs::Span span("corpus", obs::trace_enabled() ? "file:" + path
                                                : std::string());
  CorpusMetrics::get().files.add();
  // Fresh per-file budget: one slow file trips ITS deadline and reports
  // unknown; its siblings are unaffected.
  std::optional<Budget> budget;
  if (has_budget(options)) budget.emplace(budget_limits(options));
  Budget* budget_ptr = budget ? &*budget : nullptr;
  const auto finish = [&](int code) {
    if (code == 2) CorpusMetrics::get().errors.add();
    report.exit_code = code;
    report.text = out.str();
    return report;
  };

  const auto source = read_file(path);
  if (!source) {
    out << "cannot open '" << path << "'\n";
    return finish(2);
  }

  const CompiledInput compiled = compile_input(path, *source, options);
  out << compiled.header;
  if (compiled.gtype == nullptr) return finish(2);
  return finish(analyze_gtype_report(compiled.gtype, options, engine,
                                     budget_ptr, out, &report.budget));
}

}  // namespace

// The file-boundary retention cap is the process-wide quota shared with
// GroundDeadlockScanner's batch trim and the daemon's cache eviction
// (graph.hpp): a file task's thread keeps its scan arena warm for the
// next file it picks up, but a pathological file's high-water allocation
// is returned at the file boundary instead of riding along for the rest
// of the corpus run.

FileReport analyze_file(const std::string& path, const CorpusOptions& options,
                        Engine* engine) {
  // A corpus run must never lose the whole batch to one bad file: an
  // exception escaping any layer below (a parser depth guard, bad_alloc
  // on a pathological type, a frontend bug) used to propagate through
  // TaskGroup::wait() and abort fdlc with an unhandled exception. Fold
  // it into the per-file report instead; main prints exit>=2 reports to
  // stderr and the worst-exit-code logic does the rest.
  try {
    FileReport report = analyze_file_unguarded(path, options, engine);
    trim_scan_arena(scan_arena_trim_quota());
    return report;
  } catch (const std::exception& e) {
    trim_scan_arena(scan_arena_trim_quota());
    CorpusMetrics::get().errors.add();
    FileReport report;
    report.path = path;
    report.exit_code = 2;
    report.text =
        "internal error analyzing '" + path + "': " + e.what() + "\n";
    return report;
  } catch (...) {
    // Not every failure derives from std::exception — the fault-injection
    // harness deliberately throws a non-std type to prove this path, and
    // third-party code below could too. Same contract as above: fold into
    // a per-file exit-2 report, never lose the batch.
    trim_scan_arena(scan_arena_trim_quota());
    CorpusMetrics::get().errors.add();
    FileReport report;
    report.path = path;
    report.exit_code = 2;
    report.text = "internal error analyzing '" + path +
                  "': unknown exception\n";
    return report;
  }
}

CorpusReport drive_corpus(const std::vector<std::string>& files,
                          const CorpusOptions& options) {
  CorpusReport corpus;
  corpus.files.resize(files.size());
  const unsigned jobs = std::max(1u, options.jobs);
  Engine engine(jobs);
  if (engine.pool() == nullptr) {
    for (std::size_t i = 0; i < files.size(); ++i) {
      corpus.files[i] = analyze_file(files[i], options, &engine);
    }
  } else {
    // One claimable task per file; slots are indexed, so completion order
    // never shows in the report. Compilation interns into the shared
    // table concurrently (the interner is internally synchronized), and
    // each file's detect passes may fan out further through the same
    // engine — nested tasks land on the running worker's own deque.
    TaskGroup group(*engine.pool());
    for (std::size_t i = 0; i < files.size(); ++i) {
      group.run([&, i] {
        corpus.files[i] = analyze_file(files[i], options, &engine);
      });
    }
    group.wait();
  }
  for (const FileReport& file : corpus.files) {
    corpus.exit_code = std::max(corpus.exit_code, file.exit_code);
  }
  return corpus;
}

}  // namespace gtdl
