#include "gtdl/par/engine.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "gtdl/gtype/intern.hpp"
#include "gtdl/gtype/subst.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/par/thread_pool.hpp"
#include "gtdl/support/budget.hpp"
#include "gtdl/support/fault.hpp"
#include "gtdl/support/flat_memo.hpp"
#include "gtdl/support/overloaded.hpp"

namespace gtdl {

namespace {

// Fork-decision accounting (docs/OBSERVABILITY.md "par" section). One
// immortal bundle so each site pays a guard-variable check, never a
// registry lookup; every add() is gated on the global stats flag.
struct EngineMetrics {
  obs::Counter& forks;
  obs::Counter& forks_inlined;
  obs::Counter& forks_pool_run;
  obs::Counter& reject_no_pool;
  obs::Counter& reject_no_fuel;
  obs::Counter& reject_not_worth;
  obs::Counter& reject_budget;
  obs::Counter& memo_waits;

  static EngineMetrics& get() {
    static EngineMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      auto c = [&reg](const char* name, const char* help) -> obs::Counter& {
        return reg.counter(obs::MetricDesc{name, "par", "tasks", help});
      };
      return new EngineMetrics{
          c("par.engine.forks", "Norm subproblems submitted to the pool"),
          c("par.engine.forks_inlined",
            "forked subproblems claimed back and run by their joiner"),
          c("par.engine.forks_pool_run",
            "forked subproblems actually executed by a pool worker"),
          c("par.engine.fork_reject.no_pool",
            "fork sites declined: no worker threads"),
          c("par.engine.fork_reject.no_fuel",
            "fork sites declined: fuel exhausted"),
          c("par.engine.fork_reject.not_worth",
            "fork sites declined: subterm too cheap (no mu/application)"),
          c("par.engine.fork_reject.budget",
            "fork sites declined: live-fork budget reached"),
          c("par.engine.memo_waits",
            "threads that blocked on another thread's in-flight memo cell"),
      };
    }();
    return *m;
  }
};

// (node id, fuel, family index) — mirrors the sequential normalizer's
// generalized key. Scalar subproblems use kNoFamilyIndex; VecSpawn nodes
// memoize whole-family results under the scalar form of the key (the
// engine derives the member product from the shared unrolling, so there
// are no per-member vectors to publish).
struct MemoKey {
  std::uint64_t id = 0;
  unsigned fuel = 0;
  std::uint32_t family = kNoFamilyIndex;

  static constexpr std::uint32_t kNoFamilyIndex = 0xffffffffu;

  friend bool operator==(const MemoKey&, const MemoKey&) = default;
};

struct MemoKeyHash {
  std::size_t operator()(const MemoKey& k) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(k.id);
    h ^= std::hash<unsigned>{}(k.fuel) * 0x9e3779b97f4a7c15ull;
    h ^= std::hash<std::uint32_t>{}(k.family) * 0xc2b2ae3d27d4eb4full;
    return h;
  }
};

// True iff Norm_n of the subterm is provably nonempty for every n >= 1:
// with no free graph variables and no μ/Π/application below, every
// normalization rule contributes at least one graph, and that property is
// preserved by the ν rule's vertex substitution. Used to decide when the
// rhs of a ⊕ may be forked speculatively — the sequential normalizer
// skips the rhs entirely when the lhs normalizes to ∅, and a speculative
// fork must not burn step budget on work the sequential path never does.
bool provably_nonempty(const GTypeFacts* facts) {
  return facts != nullptr && facts->free_gvars.empty() &&
         facts->stats.mu_bindings == 0 && facts->stats.applications == 0 &&
         facts->stats.pi_bindings == 0;
}

// Worth submitting to the pool: only subterms that unroll (μ or
// application below) do enough work to pay for a task cell.
bool worth_forking(const GTypeFacts* facts) {
  return facts != nullptr && (facts->stats.mu_bindings > 0 ||
                              facts->stats.applications > 0);
}

// The task-DAG evaluation of the Norm_n recursion. One instance per
// normalize() call; shared between the calling thread and the pool
// workers executing its forked subtasks, so every member is either
// immutable after construction, atomic, or guarded (shards, task cells).
class ParNormalizer {
 public:
  ParNormalizer(ThreadPool& pool, unsigned threads,
                const NormalizeLimits& limits)
      : pool_(pool),
        limits_(limits),
        use_memo_(limits.enable_memo &&
                  GTypeInterner::instance().memoization_enabled()),
        fork_budget_(static_cast<std::size_t>(threads) * 8) {}

  // Entry cells hold full result vectors whose validity is tied to THIS
  // run's truncation state; destroy them with the run (the leased slot
  // arrays themselves stay pooled and warm).
  ~ParNormalizer() {
    for (Shard& shard : shards_) shard.memo.purge_on_release();
  }

  NormalizeResult run(const GTypePtr& g, unsigned n) {
    NormalizeResult result;
    result.graphs = norm(g, n, 0);
    result.truncated = truncated_.load(std::memory_order_relaxed);
    result.depth_limited = depth_limited_.load(std::memory_order_relaxed);
    result.steps = steps_.load(std::memory_order_relaxed);
    return result;
  }

 private:
  // A forked Norm subproblem. Executed exactly once: claimed either by a
  // pool worker or by the joining thread (claim-back), so an unclaimed
  // task never blocks its joiner. Joins block only on tasks some worker
  // is actively running; dependencies strictly decrease the well-founded
  // (fuel, term size) measure, so waits cannot cycle.
  struct Task {
    std::mutex mu;
    std::condition_variable cv;
    enum class State { kPending, kRunning, kDone } state = State::kPending;
    GTypePtr g;
    unsigned fuel = 0;
    std::size_t depth = 0;
    std::vector<GraphExprPtr> graphs;
    std::exception_ptr error;
  };
  using TaskPtr = std::shared_ptr<Task>;

  // One (id, fuel) subproblem in the sharded memo. The first thread to
  // need the key computes it; concurrent askers block on the cell and
  // then reuse the stored graphs through the thread-confined fresh-name
  // refresh, exactly like the sequential memo's second occurrence.
  struct MemoEntry {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    // Only complete results are reusable; a result computed while a limit
    // tripped elsewhere is an arbitrary subset (cf. the sequential memo,
    // which simply declines to store it).
    bool valid = false;
    std::vector<GraphExprPtr> graphs;
  };
  // The container behind each shard is the same leased flat table the
  // sequential memos use (or the pre-flat unordered_map in compat mode);
  // all access stays under the shard mutex, so the owner/waiter protocol
  // is untouched. The lease is acquired and released on the thread that
  // owns the ParNormalizer, which is also where TLS pooling keeps the
  // slot arrays warm across corpus files.
  struct Shard {
    std::mutex mu;
    LeasedMemo<MemoKey, std::shared_ptr<MemoEntry>, MemoKeyHash> memo;
  };
  static constexpr std::size_t kShards = 32;

  // RAII join: guarantees the forked task is executed-and-joined before
  // the frame unwinds (a queued closure must never outlive `this`).
  class ForkHandle {
   public:
    ForkHandle(ParNormalizer& owner, TaskPtr task)
        : owner_(owner), task_(std::move(task)) {}
    ~ForkHandle() {
      if (task_ == nullptr) return;
      try {
        (void)owner_.join_task(task_);
      } catch (...) {
        // Unwinding already; the first exception wins.
      }
    }
    ForkHandle(const ForkHandle&) = delete;
    ForkHandle& operator=(const ForkHandle&) = delete;

    std::vector<GraphExprPtr> join() {
      TaskPtr task = std::move(task_);
      return owner_.join_task(task);
    }

   private:
    ParNormalizer& owner_;
    TaskPtr task_;
  };

  std::optional<ForkHandle> maybe_fork(const GTypePtr& g, unsigned fuel,
                                       std::size_t depth) {
    EngineMetrics& em = EngineMetrics::get();
    if (pool_.size() == 0) {
      em.reject_no_pool.add();
      return std::nullopt;
    }
    if (fuel == 0) {
      em.reject_no_fuel.add();
      return std::nullopt;
    }
    if (!worth_forking(g->facts)) {
      em.reject_not_worth.add();
      return std::nullopt;
    }
    if (live_forks_.load(std::memory_order_relaxed) >= fork_budget_) {
      em.reject_budget.add();
      return std::nullopt;
    }
    em.forks.add();
    live_forks_.fetch_add(1, std::memory_order_relaxed);
    auto task = std::make_shared<Task>();
    task->g = g;
    task->fuel = fuel;
    task->depth = depth;
    pool_.submit([this, task] {
      {
        std::lock_guard lock(task->mu);
        // Stale closure: the joiner claimed the task back. `this` may be
        // gone by now, but then no task of its run is still pending, so
        // this branch is the only one taken.
        if (task->state != Task::State::kPending) return;
        task->state = Task::State::kRunning;
      }
      EngineMetrics::get().forks_pool_run.add();
      run_task(task);
    });
    return std::optional<ForkHandle>(std::in_place, *this, std::move(task));
  }

  void run_task(const TaskPtr& task) {
    std::vector<GraphExprPtr> graphs;
    std::exception_ptr error;
    try {
      // Task-start poll: a worker picking up a task queued before the
      // budget tripped must notice before doing any real work.
      if (limits_.budget != nullptr && limits_.budget->checkpoint()) {
        truncated_.store(true, std::memory_order_relaxed);
      } else {
        graphs = norm(task->g, task->fuel, task->depth);
      }
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(task->mu);
      task->graphs = std::move(graphs);
      task->error = error;
      task->state = Task::State::kDone;
    }
    task->cv.notify_all();
  }

  std::vector<GraphExprPtr> join_task(const TaskPtr& task) {
    bool claimed = false;
    {
      std::lock_guard lock(task->mu);
      if (task->state == Task::State::kPending) {
        task->state = Task::State::kRunning;
        claimed = true;
      }
    }
    if (claimed) {
      EngineMetrics::get().forks_inlined.add();
      run_task(task);
    }
    std::unique_lock lock(task->mu);
    task->cv.wait(lock, [&] { return task->state == Task::State::kDone; });
    live_forks_.fetch_sub(1, std::memory_order_relaxed);
    if (task->error) std::rethrow_exception(task->error);
    return std::move(task->graphs);
  }

  std::vector<GraphExprPtr> norm(const GTypePtr& g, unsigned n,
                                 std::size_t depth) {
    std::vector<GraphExprPtr> out = norm_node(g, n, depth);
    // Eager alpha-dedup at every node, as in the sequential normalizer.
    if (limits_.dedup_alpha && out.size() > 1) dedup_alpha_graphs(out);
    return out;
  }

  std::vector<GraphExprPtr> norm_node(const GTypePtr& g, unsigned n,
                                      std::size_t depth) {
    if (truncated_.load(std::memory_order_relaxed) || n == 0) return {};
    if (depth > limits_.max_depth) {
      depth_limited_.store(true, std::memory_order_relaxed);
      truncated_.store(true, std::memory_order_relaxed);
      return {};
    }
    if (steps_.fetch_add(1, std::memory_order_relaxed) + 1 >
        limits_.max_steps) {
      truncated_.store(true, std::memory_order_relaxed);
      return {};
    }
    if (limits_.budget != nullptr && limits_.budget->checkpoint()) {
      truncated_.store(true, std::memory_order_relaxed);
      return {};
    }
    const GTypeFacts* facts = g->facts;
    const bool memoizable =
        use_memo_ && facts != nullptr &&
        (std::holds_alternative<GTRec>(g->node) ||
         std::holds_alternative<GTApp>(g->node) ||
         std::holds_alternative<GTNew>(g->node) ||
         std::holds_alternative<GTVecSpawn>(g->node));
    std::shared_ptr<MemoEntry> owned;  // set iff this thread computes it
    if (memoizable) {
      const MemoKey key{facts->id, n};
      Shard& shard = shards_[MemoKeyHash{}(key) % kShards];
      std::shared_ptr<MemoEntry> entry;
      bool owner = false;
      {
        std::lock_guard lock(shard.mu);
        auto [slot, inserted] = shard.memo.try_emplace(key);
        if (inserted) *slot = std::make_shared<MemoEntry>();
        entry = *slot;
        owner = inserted;
      }
      auto& interner = GTypeInterner::instance();
      if (owner) {
        interner.note_norm_memo(false);
        owned = std::move(entry);
      } else {
        std::vector<GraphExprPtr> stored;
        bool valid = false;
        {
          std::unique_lock lock(entry->mu);
          if (!entry->done) EngineMetrics::get().memo_waits.add();
          entry->cv.wait(lock, [&] { return entry->done; });
          valid = entry->valid;
          if (valid) stored = entry->graphs;  // shares structure; refresh
        }                                     // below builds fresh copies
        interner.note_norm_memo(valid);
        if (valid) return refresh_instantiations(*facts, stored);
        // The stored result was truncated; recompute inline (the global
        // truncated_ flag makes this unwind quickly).
      }
    }
    std::vector<GraphExprPtr> result;
    try {
      result = eval(g, n, depth);
    } catch (...) {
      if (owned) publish(*owned, {}, false);
      throw;
    }
    if (owned) {
      // Fault point "memo": dying here (before the successful publish)
      // exercises the owner-failure protocol above — publish-invalid so
      // waiters wake, then rethrow.
      try {
        fault::maybe_inject("memo");
      } catch (...) {
        publish(*owned, {}, false);
        throw;
      }
      const bool valid = !truncated_.load(std::memory_order_relaxed);
      publish(*owned, result, valid);
    }
    return result;
  }

  static void publish(MemoEntry& entry, std::vector<GraphExprPtr> graphs,
                      bool valid) {
    {
      std::lock_guard lock(entry.mu);
      entry.graphs = std::move(graphs);
      entry.valid = valid;
      entry.done = true;
    }
    entry.cv.notify_all();
  }

  // The Fig. 3 rules, structured exactly like the sequential
  // Normalizer::norm_node visitor; ∨, μ and (provably reachable) ⊕
  // children are submitted as subtasks.
  std::vector<GraphExprPtr> eval(const GTypePtr& g, unsigned n,
                                 std::size_t depth) {
    return std::visit(
        Overloaded{
            [&](const GTEmpty&) {
              return std::vector<GraphExprPtr>{ge::singleton()};
            },
            [&](const GTSeq& node) {
              // Fork the rhs only when the sequential path provably
              // reaches it (it short-circuits when the lhs is ∅).
              std::optional<ForkHandle> rhs_fork =
                  [&]() -> std::optional<ForkHandle> {
                if (!provably_nonempty(node.lhs->facts)) return std::nullopt;
                return maybe_fork(node.rhs, n, depth + 1);
              }();
              const std::vector<GraphExprPtr> lhs =
                  norm(node.lhs, n, depth + 1);
              if (lhs.empty()) return std::vector<GraphExprPtr>{};
              const std::vector<GraphExprPtr> rhs =
                  rhs_fork ? rhs_fork->join() : norm(node.rhs, n, depth + 1);
              std::vector<GraphExprPtr> out;
              out.reserve(lhs.size() * rhs.size());
              for (const GraphExprPtr& a : lhs) {
                for (const GraphExprPtr& b : rhs) {
                  if (out.size() >= limits_.max_graphs) {
                    truncated_.store(true, std::memory_order_relaxed);
                    return out;
                  }
                  out.push_back(ge::seq(a, b));
                }
              }
              return out;
            },
            [&](const GTOr& node) {
              // Both alternatives are always evaluated; fork freely.
              std::optional<ForkHandle> rhs_fork =
                  maybe_fork(node.rhs, n, depth + 1);
              std::vector<GraphExprPtr> out = norm(node.lhs, n, depth + 1);
              std::vector<GraphExprPtr> rhs =
                  rhs_fork ? rhs_fork->join() : norm(node.rhs, n, depth + 1);
              for (GraphExprPtr& g2 : rhs) {
                if (out.size() >= limits_.max_graphs) {
                  truncated_.store(true, std::memory_order_relaxed);
                  break;
                }
                out.push_back(std::move(g2));
              }
              return out;
            },
            [&](const GTSpawn& node) {
              std::vector<GraphExprPtr> bodies = norm(node.body, n, depth + 1);
              std::vector<GraphExprPtr> out;
              out.reserve(bodies.size());
              for (GraphExprPtr& body : bodies) {
                out.push_back(ge::spawn(std::move(body), node.vertex));
              }
              return out;
            },
            [&](const GTTouch& node) {
              return std::vector<GraphExprPtr>{ge::touch(node.vertex)};
            },
            [&](const GTRec&) {
              // Norm_n(μγ.G) = Norm_{n-1}(G[μγ.G/γ]) ∪ Norm_{n-1}(μγ.G).
              // The two subproblems are independent; fork the
              // not-unrolled one while unrolling here.
              std::optional<ForkHandle> keep_fork =
                  maybe_fork(g, n - 1, depth + 1);
              std::vector<GraphExprPtr> out =
                  norm(cached_unroll(g), n - 1, depth + 1);
              std::vector<GraphExprPtr> keep =
                  keep_fork ? keep_fork->join() : norm(g, n - 1, depth + 1);
              for (GraphExprPtr& g2 : keep) {
                if (out.size() >= limits_.max_graphs) {
                  truncated_.store(true, std::memory_order_relaxed);
                  break;
                }
                out.push_back(std::move(g2));
              }
              return out;
            },
            [&](const GTVar&) { return std::vector<GraphExprPtr>{}; },
            [&](const GTNew& node) {
              // Norm_n(νu.G) = Norm_n(G[u'/u]), u' fresh.
              const Symbol fresh = Symbol::fresh(node.vertex.view());
              const GTypePtr body = substitute_vertices(
                  node.body, VertexSubst{{node.vertex, fresh}});
              return norm(body, n, depth + 1);
            },
            [&](const GTPi&) { return std::vector<GraphExprPtr>{}; },
            [&](const GTApp& node) {
              GTypePtr fn = node.fn;
              unsigned fuel = n;
              while (!std::holds_alternative<GTPi>(fn->node)) {
                if (!std::holds_alternative<GTRec>(fn->node) || fuel == 0) {
                  return std::vector<GraphExprPtr>{};
                }
                fn = cached_unroll(fn);
                --fuel;
              }
              const auto& pi = std::get<GTPi>(fn->node);
              if (pi.spawn_params.size() != node.spawn_args.size() ||
                  pi.touch_params.size() != node.touch_args.size()) {
                return std::vector<GraphExprPtr>{};
              }
              VertexSubst subst;
              for (std::size_t i = 0; i < pi.spawn_params.size(); ++i) {
                subst.emplace(pi.spawn_params[i], node.spawn_args[i]);
              }
              for (std::size_t i = 0; i < pi.touch_params.size(); ++i) {
                subst.emplace(pi.touch_params[i], node.touch_args[i]);
              }
              return norm(substitute_vertices(pi.body, subst), fuel,
                          depth + 1);
            },
            [&](const GTVecSpawn& node) {
              // Normalize the shared scalar unrolling: the ⊕ arm above
              // then forks members across the pool for free, and the
              // member product comes out in the same order as the
              // sequential rule's.
              return norm(vecspawn_unroll(node), n, depth + 1);
            },
            [&](const GTTouchAll& node) {
              if (node.width == 0) {
                return std::vector<GraphExprPtr>{ge::singleton()};
              }
              GraphExprPtr acc = ge::touch(family_member(node.family, 0));
              for (std::uint32_t i = 1; i < node.width; ++i) {
                acc = ge::seq(std::move(acc),
                              ge::touch(family_member(node.family, i)));
              }
              return std::vector<GraphExprPtr>{std::move(acc)};
            },
            [&](const GTTouchIdx& node) {
              return std::vector<GraphExprPtr>{
                  ge::touch(family_member(node.family, node.index))};
            },
            [&](const GTPipe&) {
              obs::Span span("gtype", "pipeline_lower");
              return norm(pipe_desugar(g), n, depth + 1);
            },
        },
        g->node);
  }

  static GTypePtr cached_unroll(const GTypePtr& g) {
    return GTypeInterner::instance().cached_unroll(g);
  }

  ThreadPool& pool_;
  const NormalizeLimits limits_;
  const bool use_memo_;
  const std::size_t fork_budget_;  // soft cap on in-flight subtasks
  std::atomic<std::size_t> live_forks_{0};
  std::atomic<std::size_t> steps_{0};
  std::atomic<bool> truncated_{false};
  std::atomic<bool> depth_limited_{false};
  Shard shards_[kShards];
};

}  // namespace

struct Engine::Impl {
  unsigned threads = 1;
  std::unique_ptr<ThreadPool> pool;  // threads - 1 workers; null if 0
};

Engine::Engine(unsigned threads) : impl_(std::make_unique<Impl>()) {
  impl_->threads = threads == 0 ? 1 : threads;
  if (impl_->threads > 1) {
    impl_->pool = std::make_unique<ThreadPool>(impl_->threads - 1);
  }
}

Engine::~Engine() = default;

unsigned Engine::threads() const noexcept { return impl_->threads; }

ThreadPool* Engine::pool() noexcept { return impl_->pool.get(); }

NormalizeResult Engine::normalize(const GTypePtr& g, unsigned depth,
                                  const NormalizeLimits& limits) {
  GTypeInterner::ScopedAnalysis active;
  if (impl_->pool == nullptr) {
    // The sequential code path, not a 1-thread re-implementation of it.
    return gtdl::normalize(g, depth, limits);
  }
  obs::Span span("par", "engine.normalize");
  ParNormalizer normalizer(*impl_->pool, impl_->threads, limits);
  return normalizer.run(g, depth);
}

}  // namespace gtdl
