// Order-preserving batched ground-deadlock scan over a graph stream.
//
// The GML baseline asks one question of every normalized ground graph:
// any cycle, any unspawned touch? With the streaming enumerator
// (gtype/normalize.hpp) graphs arrive one at a time, so the scanner
// buffers them into fixed-size batches and scans each batch either
// sequentially (early exit) or fanned out over a thread pool with a
// minimum-index reduction. Either way the reported witness is the FIRST
// offending graph in stream order, and the number of graphs consumed
// before stopping depends only on the batch size — never on the thread
// count — so reports are deterministic across --jobs settings.
//
// Peak materialization is one batch (default 512 graphs) regardless of
// how many graphs the stream would produce.

#pragma once

#include <cstddef>
#include <vector>

#include "gtdl/graph/csr.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/graph/graph_expr.hpp"

namespace gtdl {

class Budget;  // support/budget.hpp
class ThreadPool;

class GroundDeadlockScanner {
 public:
  struct Options {
    // Null pool means each batch is scanned on the calling thread.
    ThreadPool* pool = nullptr;
    unsigned threads = 1;
    // Batch and fan-out granularity; also the determinism unit — a hit
    // anywhere in a batch stops the stream at that batch's boundary.
    std::size_t batch_size = 512;
    // Optional resource budget (not owned). Charged one step per graph
    // at each batch boundary; arena bytes are charged against the memory
    // limit after each batch. A trip aborts the scan at the boundary —
    // aborted() distinguishes "gave up" from "scanned everything clean".
    Budget* budget = nullptr;
    // Per-thread scan-arena retention cap. Scans run on the thread_local
    // arena (so a worker's warm arena persists across batches, scanner
    // instances, and corpus files); after each batch any arena grown past
    // this cap is released so one pathological graph cannot pin its
    // high-water bytes for the rest of the run. Defaults to the
    // process-wide quota (graph.hpp) shared with the corpus file boundary
    // and the daemon's eviction policy.
    std::size_t arena_trim_bytes = scan_arena_trim_quota();
  };

  explicit GroundDeadlockScanner(const Options& options);

  // Feeds the next graph in stream order. Returns false once a deadlock
  // has been found (the caller should stop streaming); graphs pushed
  // after that are ignored.
  bool push(GraphExprPtr graph);

  // Scans whatever partial batch remains. Call once, after the stream.
  void finish();

  [[nodiscard]] bool found() const noexcept { return found_; }
  // True when the budget tripped before the stream was fully scanned; a
  // clean (not-found) verdict is then Unknown, not DeadlockFree.
  [[nodiscard]] bool aborted() const noexcept { return aborted_; }
  [[nodiscard]] const GroundDeadlock& verdict() const noexcept {
    return verdict_;
  }
  // The first offending graph in stream order (null until found()).
  [[nodiscard]] const GraphExprPtr& offending_graph() const noexcept {
    return offending_;
  }
  // Graphs accepted from the stream. On a hit this is the batch
  // boundary just past the offending graph — a deterministic function
  // of the stream and batch_size alone.
  [[nodiscard]] std::size_t pushed() const noexcept { return pushed_; }

 private:
  void flush();
  void flush_sequential();
  void flush_parallel();

  Options options_;
  std::vector<GraphExprPtr> batch_;
  std::size_t pushed_ = 0;
  std::size_t batch_start_ = 0;  // stream index of batch_[0]
  bool found_ = false;
  bool aborted_ = false;
  GroundDeadlock verdict_;
  GraphExprPtr offending_;
};

}  // namespace gtdl
