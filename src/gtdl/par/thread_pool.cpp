#include "gtdl/par/thread_pool.hpp"

#include <chrono>
#include <utility>

#include "gtdl/obs/metrics.hpp"
#include "gtdl/support/fault.hpp"

namespace gtdl {

namespace {

// Identity of the worker currently running on this thread, if any. A
// plain pair instead of a map: a thread belongs to at most one pool.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local unsigned tl_worker = 0;

// Where did each executed task come from? own = depth-first local pop,
// inject = submitted from outside the pool, steal = lifted off a
// sibling. A healthy run is own-dominated; steal-heavy means the fork
// guards are starving some workers.
struct PoolMetrics {
  obs::Counter& submits;
  obs::Counter& own_pops;
  obs::Counter& inject_pops;
  obs::Counter& steals;
  obs::Histogram& queue_depth;

  static PoolMetrics& get() {
    static PoolMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      auto c = [&reg](const char* name, const char* help) -> obs::Counter& {
        return reg.counter(obs::MetricDesc{name, "par", "tasks", help});
      };
      return new PoolMetrics{
          c("par.pool.submits", "closures handed to the pool"),
          c("par.pool.own_pops", "tasks popped from the worker's own deque"),
          c("par.pool.inject_pops", "tasks taken from the inject queue"),
          c("par.pool.steals", "tasks stolen from a sibling worker"),
          reg.histogram(obs::MetricDesc{
              "par.pool.queue_depth", "par", "tasks",
              "target queue depth observed at each submit"}),
      };
    }();
    return *m;
  }
};

}  // namespace

ThreadPool::ThreadPool(unsigned workers) : workers_(workers) {
  queues_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::on_worker_thread() const noexcept { return tl_pool == this; }

void ThreadPool::submit(std::function<void()> fn) {
  // Fault point "task": before any queue state changes, so a throwing
  // submit leaves the pool consistent (the closure is simply never
  // enqueued and the caller unwinds).
  fault::maybe_inject("task");
  PoolMetrics& pm = PoolMetrics::get();
  pm.submits.add();
  if (tl_pool == this) {
    std::lock_guard lock(queues_[tl_worker]->mu);
    queues_[tl_worker]->tasks.push_back(std::move(fn));
    pm.queue_depth.observe(queues_[tl_worker]->tasks.size());
  } else {
    std::lock_guard lock(inject_mu_);
    injected_.push_back(std::move(fn));
    pm.queue_depth.observe(injected_.size());
  }
  idle_cv_.notify_one();
}

bool ThreadPool::try_pop(unsigned index, std::function<void()>& out) {
  PoolMetrics& pm = PoolMetrics::get();
  // Own deque, newest first: the task DAG unfolds depth-first locally.
  {
    WorkerQueue& own = *queues_[index];
    std::lock_guard lock(own.mu);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      pm.own_pops.add();
      return true;
    }
  }
  {
    std::lock_guard lock(inject_mu_);
    if (!injected_.empty()) {
      out = std::move(injected_.front());
      injected_.pop_front();
      pm.inject_pops.add();
      return true;
    }
  }
  // Steal oldest-first from siblings: the shallowest (largest) subtrees.
  for (unsigned step = 1; step < workers_; ++step) {
    WorkerQueue& victim = *queues_[(index + step) % workers_];
    std::lock_guard lock(victim.mu);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      pm.steals.add();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(unsigned index) {
  tl_pool = this;
  tl_worker = index;
  std::function<void()> task;
  for (;;) {
    if (try_pop(index, task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock lock(idle_mu_);
    if (stop_) return;
    // Re-check under the idle lock is pointless (queues have their own
    // locks); instead sleep briefly waking on every submit. A spurious
    // wake rescans and goes back to sleep.
    idle_cv_.wait_for(lock, std::chrono::milliseconds(50));
    if (stop_) return;
  }
}

void TaskGroup::execute(const std::shared_ptr<Cell>& cell) {
  std::function<void()> fn;
  {
    std::lock_guard lock(cell->mu);
    if (cell->state != Cell::State::kPending) return;
    cell->state = Cell::State::kRunning;
    fn = std::move(cell->fn);
  }
  std::exception_ptr error;
  try {
    fn();
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard lock(cell->mu);
    cell->state = Cell::State::kDone;
    cell->error = error;
  }
  cell->cv.notify_all();
}

void TaskGroup::run(std::function<void()> fn) {
  // Fault point "task": before the cell joins cells_, so wait() never
  // sees a half-registered task.
  fault::maybe_inject("task");
  auto cell = std::make_shared<Cell>();
  cell->fn = std::move(fn);
  cells_.push_back(cell);
  pool_.submit([cell] { execute(cell); });
}

void TaskGroup::wait() {
  std::exception_ptr first_error;
  // Newest first: the tasks least likely to have been picked up yet, so
  // the joiner claims them back instead of blocking.
  for (auto it = cells_.rbegin(); it != cells_.rend(); ++it) {
    const std::shared_ptr<Cell>& cell = *it;
    execute(cell);  // no-op unless still pending
    std::unique_lock lock(cell->mu);
    cell->cv.wait(lock, [&] { return cell->state == Cell::State::kDone; });
    if (cell->error && !first_error) first_error = cell->error;
  }
  cells_.clear();
  if (first_error) std::rethrow_exception(first_error);
}

void TaskGroup::wait_nothrow() noexcept {
  try {
    wait();
  } catch (...) {
    // Destructor context: the exception was already captured by the first
    // wait() if the caller wanted it.
  }
}

}  // namespace gtdl
