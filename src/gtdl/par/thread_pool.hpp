// Fixed-size work-stealing thread pool.
//
// The pool is the substrate of the parallel analysis engine (engine.hpp):
// a fixed set of workers, each owning a deque of tasks. Work submitted
// from inside a worker goes to that worker's own deque (LIFO end — the
// depth-first order the normalizer's task DAG wants for cache locality);
// work submitted from outside goes to a shared injection queue. An idle
// worker drains its own deque first, then the injection queue, then
// steals from the FIFO end of a sibling's deque — the classic
// help-locally/steal-breadth-first discipline.
//
// Blocking-join protocol. Analysis tasks form DAGs where a parent needs
// its children's results. To make joins deadlock-free without bounding
// stack growth by "helping" (running unrelated stolen tasks on top of an
// arbitrarily deep frame), joins follow the claim-back rule implemented
// by TaskGroup and the engine's task cells:
//
//   * every task is executed exactly once, either by a pool worker or
//     INLINE by the thread that joins it;
//   * a joiner first tries to claim the task (atomically Pending ->
//     Running); on success it runs the task on its own stack — an
//     unclaimed task can therefore never block anyone;
//   * if the task was already claimed, the joiner blocks on the task's
//     condition variable. The claimant is a live thread, and task
//     dependencies form a DAG (the engine's subproblems strictly decrease
//     a well-founded (fuel, size) measure), so waits cannot cycle.
//
// All queues are mutex-guarded; there is no lock-free cleverness to
// verify under TSan beyond the standard library's.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gtdl {

class ThreadPool {
 public:
  // Spawns `workers` threads (0 is allowed: submit() then queues tasks
  // that only ever run when a joiner claims them back).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();  // drains nothing: outstanding tasks must be joined first

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return workers_; }

  // Enqueues `fn` for execution by some worker. Called from a worker
  // thread, the task lands in that worker's own deque; otherwise in the
  // shared injection queue.
  void submit(std::function<void()> fn);

  // True iff the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const noexcept;

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(unsigned index);
  bool try_pop(unsigned index, std::function<void()>& out);

  unsigned workers_ = 0;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex inject_mu_;
  std::deque<std::function<void()>> injected_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  bool stop_ = false;
};

// A batch of independent tasks joined as a unit: TaskGroup::wait() claims
// still-pending tasks back and runs them inline, blocks on tasks a worker
// is running, and rethrows the first captured exception. Used for
// file-level corpus fan-out and two-way forks inside one query.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { wait_nothrow(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Submits `fn` to the pool as a claimable task.
  void run(std::function<void()> fn);

  // Blocks until every task ran; rethrows the first task exception.
  void wait();

 private:
  struct Cell {
    std::mutex mu;
    std::condition_variable cv;
    enum class State { kPending, kRunning, kDone } state = State::kPending;
    std::function<void()> fn;
    std::exception_ptr error;
  };

  static void execute(const std::shared_ptr<Cell>& cell);
  void wait_nothrow() noexcept;

  ThreadPool& pool_;
  std::vector<std::shared_ptr<Cell>> cells_;
};

}  // namespace gtdl
