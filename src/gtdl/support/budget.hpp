// Resource governance for long-running analyses.
//
// A Budget bundles the three resources a pathological input can exhaust —
// wall-clock time, analysis steps, and arena bytes — behind one cheap,
// thread-safe poll. Analysis loops call checkpoint() at their natural
// step granularity (normalize steps, stream emissions, scan batches,
// engine task starts, kind-check recursion); the first limit to trip
// cancels the budget's CancelToken, and every subsequent poll on every
// thread observes the cancellation and unwinds cooperatively, by
// returning truncated results — never by throwing across the concurrent
// core. Layers report the outcome as a three-valued verdict: the analysis
// either finished (DeadlockFree / MayDeadlock) or it did not, and then
// the result is Unknown{reason}, not a wrong answer (the shape Kroening
// et al.'s sound deadlock analyzer uses for solver timeouts).
//
// Cost discipline: with no limits configured, checkpoint() is two relaxed
// atomic operations and a never-taken branch; the steady_clock is read at
// most once per 1024 steps even when a deadline IS set, so per-step
// polling stays measurably under 2% of the normalize hot path
// (bench_budget enforces this bound).
//
// A Budget is shared by reference across every thread of one analysis; it
// is safe to poll concurrently. It is NOT reusable across analyses — make
// a fresh one per query (the corpus driver makes one per file).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace gtdl {

// Why a budget-governed analysis stopped early. kNone means it did not.
enum class BudgetReason : std::uint8_t {
  kNone = 0,
  kDeadline,   // wall-clock deadline exceeded
  kSteps,      // step quota exceeded
  kMemory,     // arena-byte quota exceeded
  kCancelled,  // cancelled externally (caller, fault harness, Ctrl-C path)
};

[[nodiscard]] const char* to_string(BudgetReason reason) noexcept;

// First-cancel-wins cancellation flag, shared across threads. Exists
// separately from Budget so a caller can cancel an analysis for reasons
// of its own (shutdown, a sibling query already answered) through the
// same cooperative polling the resource limits use.
class CancelToken {
 public:
  // Requests cancellation; the first recorded reason wins.
  void cancel(BudgetReason reason = BudgetReason::kCancelled) noexcept {
    std::uint8_t expected = 0;
    reason_.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(reason),
        std::memory_order_release, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return reason_.load(std::memory_order_relaxed) != 0;
  }

  [[nodiscard]] BudgetReason reason() const noexcept {
    return static_cast<BudgetReason>(
        reason_.load(std::memory_order_acquire));
  }

 private:
  std::atomic<std::uint8_t> reason_{0};
};

// Snapshot of a budget's outcome, carried in verdicts and per-file
// reports. `spent` and `limit` are in the reason's unit (ms, steps, or
// bytes); both are 0 when reason == kNone or the budget was unlimited.
struct BudgetStatus {
  BudgetReason reason = BudgetReason::kNone;
  std::uint64_t spent = 0;
  std::uint64_t limit = 0;

  [[nodiscard]] bool exhausted() const noexcept {
    return reason != BudgetReason::kNone;
  }

  // Verdict-grade rendering: reason and limit only. `spent` is
  // deliberately excluded so repeated runs of the same command produce
  // byte-identical verdict lines (spent varies run to run; it is
  // reported through --stats instead).
  [[nodiscard]] std::string render() const;
};

// The budget proper. All limits are 0-means-unlimited; a
// default-constructed Budget never trips on its own but still supports
// external cancellation through token().
class Budget {
 public:
  struct Limits {
    std::uint64_t deadline_ms = 0;  // wall clock from construction
    std::uint64_t max_steps = 0;    // checkpoint() units
    std::uint64_t max_bytes = 0;    // check_memory() high-water bytes
  };

  Budget() : Budget(Limits{}) {}
  explicit Budget(const Limits& limits);

  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  // The poll. Charges `n` steps and returns true iff the analysis must
  // stop (a limit tripped now or earlier, or the token was cancelled).
  // Thread-safe; the deadline clock is read at most once per
  // kClockStride charged steps across all threads.
  bool checkpoint(std::uint64_t n = 1) noexcept;

  // Reports the current high-water memory use of one consumer (callers
  // pass their arena's approx_bytes at batch boundaries). Returns true
  // iff the analysis must stop. Totals are not summed across consumers —
  // the largest single report is the high-water mark recorded.
  bool check_memory(std::uint64_t bytes) noexcept;

  // Cancels the budget externally (counts under budget.cancelled).
  void cancel(BudgetReason reason = BudgetReason::kCancelled) noexcept;

  [[nodiscard]] bool exhausted() const noexcept {
    return token_.cancelled();
  }
  [[nodiscard]] BudgetReason reason() const noexcept {
    return token_.reason();
  }
  [[nodiscard]] CancelToken& token() noexcept { return token_; }

  [[nodiscard]] std::uint64_t steps() const noexcept {
    return steps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t elapsed_ms() const noexcept;
  [[nodiscard]] const Limits& limits() const noexcept { return limits_; }

  // Outcome snapshot: reason, spent-in-the-reason's-unit, limit.
  [[nodiscard]] BudgetStatus status() const noexcept;

  // Deadline polling stride: the steady_clock is consulted when the
  // charged step count crosses a multiple of this. Power of two.
  static constexpr std::uint64_t kClockStride = 1024;

 private:
  void trip(BudgetReason reason) noexcept;

  const Limits limits_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> peak_bytes_{0};
  CancelToken token_;
};

}  // namespace gtdl
