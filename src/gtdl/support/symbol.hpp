// Interned identifiers.
//
// A Symbol is a cheap, copyable handle to an interned string. Two Symbols
// compare equal iff their spellings are equal, so they can be used as keys
// in hash maps and compared in O(1). Symbols are used throughout the code
// base for source identifiers, graph/vertex variable names, and thread
// names in traces.
//
// The interner is a process-wide table guarded by a mutex; interning is the
// slow path, everything else (comparison, hashing, printing) is lock-free
// reads of immutable data.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace gtdl {

class Symbol {
 public:
  // The default-constructed Symbol is the distinguished "invalid" symbol;
  // it compares equal only to itself and prints as "<invalid>".
  constexpr Symbol() noexcept = default;

  // Interns `spelling` and returns its handle.
  static Symbol intern(std::string_view spelling);

  // Interns `base$n` where n is a process-unique counter, guaranteeing a
  // spelling that has never been returned by `intern` before. Used for
  // fresh vertex names during normalization and substitution.
  static Symbol fresh(std::string_view base);

  [[nodiscard]] bool valid() const noexcept { return id_ != kInvalid; }

  // The interned spelling. Valid for the lifetime of the process.
  [[nodiscard]] std::string_view view() const;
  [[nodiscard]] std::string str() const { return std::string(view()); }

  [[nodiscard]] std::uint32_t raw() const noexcept { return id_; }

  friend bool operator==(Symbol a, Symbol b) noexcept { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) noexcept { return a.id_ != b.id_; }
  // Ordering is by intern id (creation order), not lexicographic; it is a
  // stable total order suitable for sorted containers.
  friend bool operator<(Symbol a, Symbol b) noexcept { return a.id_ < b.id_; }

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  explicit constexpr Symbol(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_ = kInvalid;
};

}  // namespace gtdl

template <>
struct std::hash<gtdl::Symbol> {
  std::size_t operator()(gtdl::Symbol s) const noexcept {
    return std::hash<std::uint32_t>{}(s.raw());
  }
};
