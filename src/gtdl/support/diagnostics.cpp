#include "gtdl/support/diagnostics.hpp"

namespace gtdl {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::render() const {
  std::string out;
  if (loc.known()) {
    out += std::to_string(loc.line);
    out += ':';
    out += std::to_string(loc.column);
    out += ": ";
  }
  out += to_string(severity);
  out += ": ";
  out += message;
  return out;
}

void DiagnosticEngine::report(Severity severity, SrcLoc loc,
                              std::string message) {
  if (severity == Severity::kError) ++error_count_;
  diagnostics_.push_back(Diagnostic{severity, loc, std::move(message)});
}

std::string DiagnosticEngine::render() const {
  std::string out;
  for (const Diagnostic& diagnostic : diagnostics_) {
    out += diagnostic.render();
    out += '\n';
  }
  return out;
}

}  // namespace gtdl
