#include "gtdl/support/budget.hpp"

#include "gtdl/obs/metrics.hpp"
#include "gtdl/obs/trace.hpp"

namespace gtdl {

namespace {

// docs/OBSERVABILITY.md "support" section. One immortal bundle; every
// add() is gated on the global stats flag, so a dormant checkpoint pays
// one relaxed load here.
struct BudgetMetrics {
  obs::Counter& checkpoints;
  obs::Counter& cancelled_deadline;
  obs::Counter& cancelled_steps;
  obs::Counter& cancelled_memory;
  obs::Counter& cancelled_external;

  static BudgetMetrics& get() {
    static BudgetMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      auto c = [&reg](const char* name, const char* unit,
                      const char* help) -> obs::Counter& {
        return reg.counter(obs::MetricDesc{name, "support", unit, help});
      };
      return new BudgetMetrics{
          c("budget.checkpoints", "polls",
            "budget checkpoint polls across all analysis loops"),
          c("budget.cancelled.deadline", "budgets",
            "budgets tripped by the wall-clock deadline"),
          c("budget.cancelled.steps", "budgets",
            "budgets tripped by the step quota"),
          c("budget.cancelled.memory", "budgets",
            "budgets tripped by the arena-byte quota"),
          c("budget.cancelled.external", "budgets",
            "budgets cancelled externally (caller or fault harness)"),
      };
    }();
    return *m;
  }
};

obs::Counter& cancel_counter(BudgetReason reason) {
  BudgetMetrics& bm = BudgetMetrics::get();
  switch (reason) {
    case BudgetReason::kDeadline:
      return bm.cancelled_deadline;
    case BudgetReason::kSteps:
      return bm.cancelled_steps;
    case BudgetReason::kMemory:
      return bm.cancelled_memory;
    case BudgetReason::kNone:
    case BudgetReason::kCancelled:
      break;
  }
  return bm.cancelled_external;
}

}  // namespace

const char* to_string(BudgetReason reason) noexcept {
  switch (reason) {
    case BudgetReason::kNone:
      return "none";
    case BudgetReason::kDeadline:
      return "deadline";
    case BudgetReason::kSteps:
      return "steps";
    case BudgetReason::kMemory:
      return "memory";
    case BudgetReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string BudgetStatus::render() const {
  if (reason == BudgetReason::kNone) return "within budget";
  std::string out = "budget exhausted: ";
  out += to_string(reason);
  if (limit != 0) {
    out += " (limit ";
    out += std::to_string(limit);
    switch (reason) {
      case BudgetReason::kDeadline:
        out += " ms";
        break;
      case BudgetReason::kSteps:
        out += " steps";
        break;
      case BudgetReason::kMemory:
        out += " bytes";
        break;
      case BudgetReason::kNone:
      case BudgetReason::kCancelled:
        break;
    }
    out += ")";
  }
  return out;
}

Budget::Budget(const Limits& limits)
    : limits_(limits), start_(std::chrono::steady_clock::now()) {}

std::uint64_t Budget::elapsed_ms() const noexcept {
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - start_)
          .count());
}

void Budget::trip(BudgetReason reason) noexcept {
  // First trip wins; the emitted span and counter fire only for the
  // winner (cancel() is a CAS, but concurrent same-reason trips are
  // indistinguishable anyway, so counting each attempt is harmless and
  // simpler than reading back who won).
  if (token_.cancelled()) return;
  obs::Span span("support", "cancel");
  cancel_counter(reason).add();
  token_.cancel(reason);
}

void Budget::cancel(BudgetReason reason) noexcept {
  if (token_.cancelled()) return;
  cancel_counter(reason).add();
  token_.cancel(reason);
}

bool Budget::checkpoint(std::uint64_t n) noexcept {
  BudgetMetrics::get().checkpoints.add();
  if (token_.cancelled()) return true;
  const std::uint64_t after =
      steps_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.max_steps != 0 && after > limits_.max_steps) {
    trip(BudgetReason::kSteps);
    return true;
  }
  if (limits_.deadline_ms != 0) {
    // Read the clock only when the charged step count crosses a stride
    // boundary, so per-step polling costs atomics, not syscalls. A
    // charge of n >= kClockStride always crosses.
    const std::uint64_t before = after - n;
    if ((before / kClockStride) != (after / kClockStride)) {
      if (elapsed_ms() > limits_.deadline_ms) {
        trip(BudgetReason::kDeadline);
        return true;
      }
    }
  }
  return false;
}

bool Budget::check_memory(std::uint64_t bytes) noexcept {
  // High-water max, kept for status() reporting even when unlimited.
  std::uint64_t seen = peak_bytes_.load(std::memory_order_relaxed);
  while (bytes > seen && !peak_bytes_.compare_exchange_weak(
                             seen, bytes, std::memory_order_relaxed)) {
  }
  if (token_.cancelled()) return true;
  if (limits_.max_bytes != 0 && bytes > limits_.max_bytes) {
    trip(BudgetReason::kMemory);
    return true;
  }
  return false;
}

BudgetStatus Budget::status() const noexcept {
  BudgetStatus s;
  s.reason = token_.reason();
  switch (s.reason) {
    case BudgetReason::kNone:
      break;
    case BudgetReason::kDeadline:
      s.spent = elapsed_ms();
      s.limit = limits_.deadline_ms;
      break;
    case BudgetReason::kSteps:
      s.spent = steps();
      s.limit = limits_.max_steps;
      break;
    case BudgetReason::kMemory:
      s.spent = peak_bytes_.load(std::memory_order_relaxed);
      s.limit = limits_.max_bytes;
      break;
    case BudgetReason::kCancelled:
      s.spent = steps();
      s.limit = 0;
      break;
  }
  return s;
}

}  // namespace gtdl
