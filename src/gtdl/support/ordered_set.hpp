// OrderedSet<T>: a set implemented as a sorted vector.
//
// The deadlock-freedom checker manipulates many small sets of vertex names
// (linear spawn contexts, touch contexts, consumed-sets). A sorted vector
// beats node-based sets at these sizes, gives deterministic iteration
// order (important for reproducible diagnostics), and provides the set
// algebra the analysis needs (union, difference, subset, equality) in
// linear time.

#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace gtdl {

template <typename T>
class OrderedSet {
 public:
  using const_iterator = typename std::vector<T>::const_iterator;

  OrderedSet() = default;
  OrderedSet(std::initializer_list<T> items)
      : items_(items) {
    normalize();
  }
  explicit OrderedSet(std::vector<T> items) : items_(std::move(items)) {
    normalize();
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] const_iterator begin() const noexcept { return items_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return items_.end(); }
  [[nodiscard]] const std::vector<T>& items() const noexcept { return items_; }

  [[nodiscard]] bool contains(const T& value) const {
    return std::binary_search(items_.begin(), items_.end(), value);
  }

  // Inserts `value`; returns false if it was already present.
  bool insert(const T& value) {
    auto it = std::lower_bound(items_.begin(), items_.end(), value);
    if (it != items_.end() && *it == value) return false;
    items_.insert(it, value);
    return true;
  }

  // Removes `value`; returns false if it was absent.
  bool erase(const T& value) {
    auto it = std::lower_bound(items_.begin(), items_.end(), value);
    if (it == items_.end() || *it != value) return false;
    items_.erase(it);
    return true;
  }

  void clear() noexcept { items_.clear(); }

  [[nodiscard]] bool is_subset_of(const OrderedSet& other) const {
    return std::includes(other.items_.begin(), other.items_.end(),
                         items_.begin(), items_.end());
  }

  [[nodiscard]] bool intersects(const OrderedSet& other) const {
    auto a = items_.begin();
    auto b = other.items_.begin();
    while (a != items_.end() && b != other.items_.end()) {
      if (*a < *b) {
        ++a;
      } else if (*b < *a) {
        ++b;
      } else {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] OrderedSet set_union(const OrderedSet& other) const {
    OrderedSet out;
    out.items_.reserve(size() + other.size());
    std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                   other.items_.end(), std::back_inserter(out.items_));
    return out;
  }

  [[nodiscard]] OrderedSet set_difference(const OrderedSet& other) const {
    OrderedSet out;
    out.items_.reserve(size());
    std::set_difference(items_.begin(), items_.end(), other.items_.begin(),
                        other.items_.end(), std::back_inserter(out.items_));
    return out;
  }

  [[nodiscard]] OrderedSet set_intersection(const OrderedSet& other) const {
    OrderedSet out;
    std::set_intersection(items_.begin(), items_.end(), other.items_.begin(),
                          other.items_.end(), std::back_inserter(out.items_));
    return out;
  }

  friend bool operator==(const OrderedSet&, const OrderedSet&) = default;

 private:
  void normalize() {
    std::sort(items_.begin(), items_.end());
    items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
  }

  std::vector<T> items_;
};

}  // namespace gtdl
