// The classic overload-set helper for std::visit over variants.

#pragma once

namespace gtdl {

template <typename... Fs>
struct Overloaded : Fs... {
  using Fs::operator()...;
};

template <typename... Fs>
Overloaded(Fs...) -> Overloaded<Fs...>;

}  // namespace gtdl
