#include "gtdl/support/string_util.hpp"

namespace gtdl {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace gtdl
