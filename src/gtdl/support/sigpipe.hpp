// SIGPIPE hardening for every binary that writes to something that can
// vanish: a pager that quit (`fdlc ... | head`), a daemon client that
// hung up mid-response, a fuzzing-farm parent that died under its
// workers.
//
// Default POSIX behavior kills the writing process with SIGPIPE before
// write() ever returns, so no amount of error checking downstream helps.
// With the signal ignored the same write fails with EPIPE instead, and
// the existing error paths turn it into a clean diagnostic: fdlc flushes
// std::cout before exiting and converts a failed report into exit 2,
// fdld's per-connection write_all drops just that connection, and farm
// workers treat a dead parent pipe as an orderly shutdown
// (docs/ROBUSTNESS.md "Broken pipes").

#pragma once

#include <csignal>

namespace gtdl {

// Idempotent; call once at the top of main(), before any output.
inline void ignore_sigpipe() {
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif
}

}  // namespace gtdl
