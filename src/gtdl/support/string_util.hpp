// Small string helpers shared by printers and the CLI.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gtdl {

// Joins the spellings produced by `to_text(item)` with `sep`.
template <typename Range, typename ToText>
std::string join(const Range& range, std::string_view sep, ToText to_text) {
  std::string out;
  bool first = true;
  for (const auto& item : range) {
    if (!first) out += sep;
    first = false;
    out += to_text(item);
  }
  return out;
}

[[nodiscard]] inline bool starts_with(std::string_view text,
                                      std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

// Splits on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  char sep);

}  // namespace gtdl
