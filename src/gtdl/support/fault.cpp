#include "gtdl/support/fault.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "gtdl/obs/metrics.hpp"

namespace gtdl::fault {

namespace {

struct Config {
  std::string point;
  // Injection threshold over the full u64 range: decision is
  // splitmix64(seed ^ arrival) <= threshold. 0 disables even when armed
  // (rate 0); UINT64_MAX injects always (rate 1).
  std::uint64_t threshold = 0;
  std::uint64_t seed = 0;
  obs::Counter* injected_metric = nullptr;
};

// Guarded configuration: written only by configure()/clear() (cold, test
// setup), read by armed hot paths. A mutex on the read side would be
// unacceptable, so the active config is published through an atomic
// pointer to an immutable heap object; old configs are intentionally
// leaked (configuration happens O(1) times per process, and leaking them
// keeps readers free of lifetime games — same idiom as the immortal
// metrics bundles).
std::atomic<const Config*> g_config{nullptr};
std::atomic<std::uint64_t> g_arrivals{0};
std::atomic<std::uint64_t> g_injected{0};
std::mutex g_configure_mu;

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

namespace detail {

bool should_inject(const char* point) noexcept {
  const Config* config = g_config.load(std::memory_order_acquire);
  if (config == nullptr) return false;
  if (config->point != point) return false;
  if (config->threshold == 0) return false;
  const std::uint64_t arrival =
      g_arrivals.fetch_add(1, std::memory_order_relaxed);
  return splitmix64(config->seed ^ arrival) <= config->threshold;
}

void inject(const char* point) {
  g_injected.fetch_add(1, std::memory_order_relaxed);
  const Config* config = g_config.load(std::memory_order_acquire);
  if (config != nullptr && config->injected_metric != nullptr) {
    config->injected_metric->add();
  }
  throw FaultInjected{point};
}

}  // namespace detail

bool configure(std::string_view spec, std::string* error) {
  const std::size_t c1 = spec.find(':');
  const std::size_t c2 =
      c1 == std::string_view::npos ? c1 : spec.find(':', c1 + 1);
  if (c1 == std::string_view::npos || c2 == std::string_view::npos) {
    return fail(error, "fault spec must be point:rate:seed, got '" +
                           std::string(spec) + "'");
  }
  const std::string point(spec.substr(0, c1));
  const std::string rate_text(spec.substr(c1 + 1, c2 - c1 - 1));
  const std::string seed_text(spec.substr(c2 + 1));
  if (point.empty()) return fail(error, "fault spec has an empty point");

  errno = 0;
  char* end = nullptr;
  const double rate = std::strtod(rate_text.c_str(), &end);
  if (end == rate_text.c_str() || *end != '\0' || errno == ERANGE ||
      rate < 0.0 || rate > 1.0) {
    return fail(error,
                "fault rate must be a number in [0, 1], got '" +
                    rate_text + "'");
  }
  errno = 0;
  end = nullptr;
  const unsigned long long seed =
      std::strtoull(seed_text.c_str(), &end, 10);
  if (end == seed_text.c_str() || *end != '\0' || errno == ERANGE ||
      std::strchr(seed_text.c_str(), '-') != nullptr) {
    return fail(error, "fault seed must be a u64, got '" + seed_text + "'");
  }

  auto* config = new Config;
  config->point = point;
  config->seed = seed;
  config->threshold =
      rate >= 1.0 ? ~std::uint64_t{0}
                  : static_cast<std::uint64_t>(
                        rate * 18446744073709551616.0 /* 2^64 */);
  config->injected_metric = &obs::MetricsRegistry::instance().counter(
      obs::MetricDesc{"fault.injected." + point, "support", "faults",
                      "injected faults at point '" + point + "'"});

  std::lock_guard lock(g_configure_mu);
  g_arrivals.store(0, std::memory_order_relaxed);
  g_injected.store(0, std::memory_order_relaxed);
  g_config.store(config, std::memory_order_release);  // leak the old one
  detail::g_armed.store(true, std::memory_order_release);
  return true;
}

bool configure_from_env(std::string* error) {
  const char* spec = std::getenv("GTDL_FAULT");
  if (spec == nullptr || *spec == '\0') return true;
  return configure(spec, error);
}

void clear() noexcept {
  std::lock_guard lock(g_configure_mu);
  detail::g_armed.store(false, std::memory_order_release);
  g_config.store(nullptr, std::memory_order_release);
  g_arrivals.store(0, std::memory_order_relaxed);
  g_injected.store(0, std::memory_order_relaxed);
}

std::uint64_t injected_count() noexcept {
  return g_injected.load(std::memory_order_relaxed);
}

}  // namespace gtdl::fault
