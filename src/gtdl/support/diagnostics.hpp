// Diagnostics: source locations, severities, and a collecting engine.
//
// Frontend phases (lexer, parser, type checker, graph inference) and the
// graph-type analyses report problems through a DiagnosticEngine rather
// than throwing, so a driver can render all problems at once and tests can
// assert on structured diagnostics.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gtdl {

// A half-open position in a source buffer. Line and column are 1-based;
// the default-constructed location means "no location" (e.g. diagnostics
// about synthesized graph types).
struct SrcLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool known() const noexcept { return line != 0; }
  friend bool operator==(const SrcLoc&, const SrcLoc&) = default;
};

enum class Severity : std::uint8_t { kNote, kWarning, kError };

[[nodiscard]] std::string_view to_string(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  SrcLoc loc;
  std::string message;

  // Rendered as "error: msg" or "3:14: error: msg".
  [[nodiscard]] std::string render() const;
};

// Collects diagnostics; cheap to construct, movable.
class DiagnosticEngine {
 public:
  void report(Severity severity, SrcLoc loc, std::string message);
  void error(SrcLoc loc, std::string message) {
    report(Severity::kError, loc, std::move(message));
  }
  void error(std::string message) { error(SrcLoc{}, std::move(message)); }
  void warning(SrcLoc loc, std::string message) {
    report(Severity::kWarning, loc, std::move(message));
  }
  void note(SrcLoc loc, std::string message) {
    report(Severity::kNote, loc, std::move(message));
  }

  [[nodiscard]] bool has_errors() const noexcept { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const noexcept { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const noexcept {
    return diagnostics_;
  }

  // All diagnostics, one per line, in report order.
  [[nodiscard]] std::string render() const;

  void clear() {
    diagnostics_.clear();
    error_count_ = 0;
  }

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
};

}  // namespace gtdl
