#include "gtdl/support/symbol.hpp"

#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace gtdl {
namespace {

// Process-wide interner. Spellings are stored in a deque<std::string> so
// string_views handed out stay valid as the table grows.
struct Interner {
  std::mutex mu;
  std::deque<std::string> spellings;
  std::unordered_map<std::string_view, std::uint32_t> ids;
  std::uint64_t fresh_counter = 0;

  static Interner& instance() {
    static Interner table;
    return table;
  }
};

}  // namespace

Symbol Symbol::intern(std::string_view spelling) {
  Interner& table = Interner::instance();
  std::lock_guard<std::mutex> lock(table.mu);
  if (auto it = table.ids.find(spelling); it != table.ids.end()) {
    return Symbol(it->second);
  }
  table.spellings.emplace_back(spelling);
  const auto id = static_cast<std::uint32_t>(table.spellings.size() - 1);
  table.ids.emplace(std::string_view(table.spellings.back()), id);
  return Symbol(id);
}

Symbol Symbol::fresh(std::string_view base) {
  Interner& table = Interner::instance();
  std::string candidate;
  {
    std::lock_guard<std::mutex> lock(table.mu);
    // Loop until the generated spelling is genuinely unused; a user may
    // have interned "u$3" manually.
    for (;;) {
      candidate = std::string(base);
      candidate += '$';
      candidate += std::to_string(table.fresh_counter++);
      if (table.ids.find(candidate) == table.ids.end()) {
        table.spellings.emplace_back(std::move(candidate));
        const auto id = static_cast<std::uint32_t>(table.spellings.size() - 1);
        table.ids.emplace(std::string_view(table.spellings.back()), id);
        return Symbol(id);
      }
    }
  }
}

std::string_view Symbol::view() const {
  if (!valid()) return "<invalid>";
  Interner& table = Interner::instance();
  std::lock_guard<std::mutex> lock(table.mu);
  if (id_ >= table.spellings.size()) {
    throw std::logic_error("Symbol id out of range");
  }
  return std::string_view(table.spellings[id_]);
}

}  // namespace gtdl
