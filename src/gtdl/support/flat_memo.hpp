// Flat open-addressing memo tables with generation tags — the hot-path
// replacement for the node-based std::unordered_map memos that every
// analysis pass used to rebuild per call.
//
// Three properties drive the design (cf. the SP-order engineering of
// Utterback et al., "Efficient Race Detection with Futures"):
//
//   1. FLAT STORAGE, LINEAR PROBING. One contiguous slot array, keys and
//      values inline, probe sequence h, h+1, h+2, ... — a memo lookup is
//      one cache line touch in the common case instead of a bucket
//      pointer chase plus a node allocation per insert. At the enforced
//      load bound (used slots <= 3/4 of capacity) the expected probe
//      length of a successful lookup is (1 + 1/(1-alpha))/2 ~ 2.5 and of
//      an insert (1 + 1/(1-alpha)^2)/2 ~ 8.5 — constants, independent of
//      table size (Knuth TAOCP 6.4). The observed distribution is
//      exported as the `memo.probe_len` histogram.
//
//   2. GENERATION TAGS, O(1) RESET. Every slot carries the generation it
//      was written in; a table "clears" by bumping its current
//      generation, instantly invalidating every live entry without
//      touching a single slot. A fresh analysis therefore starts on a
//      warm, already-sized table at zero cost — where the per-call
//      unordered_map paid a full allocate/rehash/destroy cycle every
//      time. Stale slots are reclaimed lazily: an insert reuses the
//      first stale slot on its probe path, and a rehash (triggered by
//      the load bound counting BOTH live and stale slots, which also
//      guarantees probe termination) drops stale entries wholesale.
//
//   3. THREAD-AFFINE REUSE. Analyses lease tables from a thread_local
//      pool (LeasedMemo below): the table a normalization warmed up
//      stays with its worker thread and is handed, generation-bumped, to
//      the next analysis that thread runs. Corpus runs settle into zero
//      memo allocation per file.
//
// Values with nontrivial payload (the normalizer's graph vectors) are
// destroyed lazily with their slots. So stale generations cannot pin
// unbounded memory, each table tracks an inserted-payload hint
// (flat_memo_payload_hint below) and the lease purges all values on
// release once the hint crosses a threshold — or when the caller asks
// (budget-cancelled analyses purge eagerly).
//
// The previous map-backed behavior remains available for differential
// testing and benchmarking via set_flat_memo_enabled(false): call sites
// sample the flag once per analysis (like GTypeInterner memoization) and
// fall back to the exact pre-flat containers. Flat and map modes are
// semantically identical — same hits, same misses, same verdicts — which
// tests/test_flat_memo.cpp asserts and bench/bench_memo.cpp measures.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gtdl/obs/metrics.hpp"

namespace gtdl {

namespace detail {
// Process-wide toggle mirroring obs::g_stats_enabled: one relaxed load,
// sampled once per analysis. Default on; tests and bench_memo flip it to
// compare against the map-backed baseline.
inline std::atomic<bool> g_flat_memo_enabled{true};

// Bumped by request_memo_pool_purge(); each thread's lease pool compares
// its last-seen value at the next lease and drops its pooled tables when
// behind. Cooperative by design: pools are thread_local, so an evicting
// thread (the daemon's cache-quota enforcement) cannot reach into other
// threads' pools directly — it publishes an epoch and every worker
// releases its warm tables at its next natural boundary.
inline std::atomic<std::uint64_t> g_memo_pool_purge_epoch{0};
}  // namespace detail

[[nodiscard]] inline bool flat_memo_enabled() noexcept {
  return detail::g_flat_memo_enabled.load(std::memory_order_relaxed);
}

// Returns the previous value. Like GTypeInterner::set_memoization this is
// a between-analyses switch: flipping it mid-analysis is harmless for
// correctness (each analysis sampled its mode at entry) but makes
// hit/miss accounting incomparable.
inline bool set_flat_memo_enabled(bool enabled) noexcept {
  return detail::g_flat_memo_enabled.exchange(enabled,
                                              std::memory_order_relaxed);
}

// Asks every thread to drop its pooled warm memo tables at its next
// lease. Correctness-neutral (a purged pool only costs the next analysis
// its warm start); used by the daemon when cache eviction must shed
// retained memory held by long-lived worker threads.
inline void request_memo_pool_purge() noexcept {
  detail::g_memo_pool_purge_epoch.fetch_add(1, std::memory_order_relaxed);
}

[[nodiscard]] inline std::uint64_t memo_pool_purge_epoch() noexcept {
  return detail::g_memo_pool_purge_epoch.load(std::memory_order_relaxed);
}

namespace memo_detail {

// Shared instruments for every flat table in the process (one catalog
// entry each; see docs/OBSERVABILITY.md "support" section). Mutations are
// gated on the global stats flag inside obs, so the dormant cost is the
// usual predictable branch.
struct MemoInstruments {
  obs::Histogram& probe_len;
  obs::Counter& generation_resets;
  obs::Counter& rehashes;
  obs::Histogram& load_factor;
  obs::Counter& pool_purges;

  static MemoInstruments& get() {
    static MemoInstruments* m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      return new MemoInstruments{
          reg.histogram(obs::MetricDesc{
              "memo.probe_len", "support", "slots",
              "linear-probe distance per flat-memo lookup"}),
          reg.counter(obs::MetricDesc{
              "memo.generation.resets", "support", "resets",
              "O(1) generation bumps standing in for full memo clears"}),
          reg.counter(obs::MetricDesc{
              "memo.rehashes", "support", "tables",
              "flat-memo rehashes (growth or stale-slot reclamation)"}),
          reg.histogram(obs::MetricDesc{
              "memo.load_factor", "support", "percent",
              "live-slot load factor (percent) observed at each rehash"}),
          reg.counter(obs::MetricDesc{
              "memo.pool.purges", "support", "pools",
              "thread lease pools dropped after a purge-epoch bump"}),
      };
    }();
    return *m;
  }
};

}  // namespace memo_detail

// Payload hints: how many "heavy" elements a value pins while its slot is
// stale. The lease purges a table whose cumulative hint crosses
// kPurgeHintThreshold. Scalar values pin nothing.
template <typename T>
std::size_t flat_memo_payload_hint(const T&) noexcept {
  return 0;
}
template <typename T, typename A>
std::size_t flat_memo_payload_hint(const std::vector<T, A>& v) noexcept {
  return v.size();
}

// Open-addressing linear-probe hash table with generation-tagged slots.
// Not thread-safe; shard externally (par/engine.cpp) or keep per-thread
// (TlsMemoLease). Key must be equality-comparable and cheap to copy.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class FlatMemo {
 public:
  FlatMemo() = default;
  FlatMemo(const FlatMemo&) = delete;
  FlatMemo& operator=(const FlatMemo&) = delete;

  // Pointer to the live value for `key`, or null. Stable until the next
  // insert (which may rehash).
  [[nodiscard]] Value* find(const Key& key) {
    if (slots_.empty()) return nullptr;
    std::size_t i = Hash{}(key) & mask_;
    std::uint64_t probes = 0;
    for (;;) {
      Slot& s = slots_[i];
      if (s.gen == 0) break;  // never-written: key absent
      if (s.gen == gen_ && s.key == key) {
        instruments_.probe_len.observe(probes);
        return &s.value;
      }
      i = (i + 1) & mask_;
      ++probes;
    }
    instruments_.probe_len.observe(probes);
    return nullptr;
  }

  // Inserts or overwrites. Returns the stored value.
  Value& put(const Key& key, Value value) {
    auto [slot, inserted] = locate_for_insert(key);
    if (inserted) {
      payload_hint_ += flat_memo_payload_hint(value);
    }
    slot->key = key;
    slot->value = std::move(value);  // move-assign frees any stale payload
    return slot->value;
  }

  // Find-or-default-construct; `second` is true iff the entry is new.
  // Matches unordered_map::try_emplace with no args — what the engine's
  // owner-election needs under its shard lock.
  std::pair<Value*, bool> try_emplace(const Key& key) {
    auto [slot, inserted] = locate_for_insert(key);
    if (inserted) {
      slot->key = key;
      slot->value = Value{};
    }
    return {&slot->value, inserted};
  }

  // O(1) logical clear: every live entry becomes stale. Values are
  // reclaimed lazily by slot reuse / rehash / purge.
  void reset() {
    instruments_.generation_resets.add();
    observe_load();
    if (gen_ == ~std::uint32_t{0}) {
      // Generation counter exhausted (2^32 - 1 resets): the one case
      // where a full wipe is needed to keep tags unambiguous.
      purge();
      return;
    }
    ++gen_;
    live_ = 0;
  }

  // Destroys every value and slot (capacity is kept so the table stays
  // warm for its next lease). Used when lazily-pinned payload must go
  // away NOW: budget-cancelled analyses, oversized retained payload.
  void purge() {
    for (Slot& s : slots_) {
      if (s.gen != 0) s = Slot{};
    }
    used_ = 0;
    live_ = 0;
    gen_ = 1;
    payload_hint_ = 0;
  }

  // One prefetch of the key's home slot — issued by the streaming
  // normalizer for the rhs of a ⊕ before the lhs is enumerated, so the
  // memo line is resident by the time the rhs lookup happens.
  void prefetch(const Key& key) const {
    if (slots_.empty()) return;
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[Hash{}(key) & mask_]);
#endif
  }

  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] std::size_t payload_hint() const noexcept {
    return payload_hint_;
  }

 private:
  struct Slot {
    Key key{};
    std::uint32_t gen = 0;  // 0 = never written; == gen_ = live; else stale
    Value value{};
  };

  static constexpr std::size_t kInitialCapacity = 64;

  // Probe for `key`; if absent, claim the first reusable (stale or empty)
  // slot on its probe path, rehashing first when the load bound would be
  // crossed. Returns (slot, inserted).
  std::pair<Slot*, bool> locate_for_insert(const Key& key) {
    if (slots_.empty()) grow(kInitialCapacity);
    // Load bound counts live AND stale slots: it both keeps probes short
    // and guarantees a gen==0 slot always exists, so every probe loop
    // terminates.
    if ((used_ + 1) * 4 > slots_.size() * 3) {
      grow(live_ * 2 >= slots_.size() ? slots_.size() * 2 : slots_.size());
    }
    std::size_t i = Hash{}(key) & mask_;
    Slot* reusable = nullptr;
    std::uint64_t probes = 0;
    for (;;) {
      Slot& s = slots_[i];
      if (s.gen == 0) {
        instruments_.probe_len.observe(probes);
        ++live_;
        if (reusable != nullptr) {
          reusable->gen = gen_;
          return {reusable, true};
        }
        ++used_;
        s.gen = gen_;
        return {&s, true};
      }
      if (s.gen == gen_) {
        if (s.key == key) {
          instruments_.probe_len.observe(probes);
          return {&s, false};
        }
      } else if (reusable == nullptr) {
        reusable = &s;  // stale: reclaim unless the key shows up live
      }
      i = (i + 1) & mask_;
      ++probes;
    }
  }

  void grow(std::size_t new_capacity) {
    instruments_.rehashes.add();
    observe_load();
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    used_ = 0;
    live_ = 0;
    payload_hint_ = 0;
    const std::uint32_t live_gen = gen_;
    gen_ = 1;
    for (Slot& s : old) {
      if (s.gen != live_gen) continue;  // stale entries die with `old`
      std::size_t i = Hash{}(s.key) & mask_;
      while (slots_[i].gen != 0) i = (i + 1) & mask_;
      slots_[i].key = s.key;
      slots_[i].gen = gen_;
      slots_[i].value = std::move(s.value);
      ++used_;
      ++live_;
      payload_hint_ += flat_memo_payload_hint(slots_[i].value);
    }
  }

  void observe_load() {
    if (!slots_.empty()) {
      instruments_.load_factor.observe(live_ * 100 / slots_.size());
    }
  }

  // Resolved once per table: the function-local-static guard inside
  // MemoInstruments::get() is an acquire load, too expensive to repeat on
  // every probe. Tables are pooled, so construction is rare.
  memo_detail::MemoInstruments& instruments_ =
      memo_detail::MemoInstruments::get();
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t used_ = 0;  // slots with gen != 0 (live + stale)
  std::size_t live_ = 0;  // slots with gen == gen_
  std::uint32_t gen_ = 1;
  std::size_t payload_hint_ = 0;  // heavy elements inserted since purge
};

// What analysis passes actually hold: a flat table leased from a
// per-thread pool by default, or the exact pre-flat std::unordered_map
// when set_flat_memo_enabled(false) — the mode is sampled once, at
// construction, like every other per-analysis toggle. The facade narrows
// the interface to the four operations the call sites share so the two
// backends stay behaviorally interchangeable (differential-tested in
// tests/test_flat_memo.cpp).
//
// Leasing: construction pops a warm table from the thread's free list
// (generation-bumped so it starts logically empty) or allocates the
// pool's next table; destruction returns it. Nested analyses on one
// thread (substitution re-enters itself under binders) each lease their
// own table. Release purges when the retained-payload hint is too big or
// the caller flagged the run as cancelled — otherwise release is O(1)
// and the table stays warm for the thread's next analysis.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LeasedMemo {
 public:
  using Table = FlatMemo<Key, Value, Hash>;

  // Retained graph vectors past this many elements are eagerly destroyed
  // on release; below it, lazy reclamation is cheaper than the walk.
  static constexpr std::size_t kPurgeHintThreshold = 1u << 16;

  LeasedMemo() {
    if (!flat_memo_enabled()) return;  // map mode: table_ stays null
    auto& free_list = pool();
    // Honor a pending process-wide purge request before reusing warm
    // tables: drop the pool wholesale (tables and their capacity), so
    // eviction actually returns memory, not just stale entries.
    thread_local std::uint64_t seen_epoch = 0;
    const std::uint64_t epoch = memo_pool_purge_epoch();
    if (seen_epoch != epoch) {
      seen_epoch = epoch;
      if (!free_list.empty()) {
        free_list.clear();
        memo_detail::MemoInstruments::get().pool_purges.add();
      }
    }
    if (free_list.empty()) {
      table_ = std::make_unique<Table>();
    } else {
      table_ = std::move(free_list.back());
      free_list.pop_back();
      table_->reset();
    }
  }

  ~LeasedMemo() {
    if (table_ == nullptr) return;
    if (purge_on_release_ ||
        table_->payload_hint() >= kPurgeHintThreshold) {
      table_->purge();
    }
    auto& free_list = pool();
    if (free_list.size() < kMaxPooled) {
      free_list.push_back(std::move(table_));
    }
  }

  LeasedMemo(const LeasedMemo&) = delete;
  LeasedMemo& operator=(const LeasedMemo&) = delete;

  [[nodiscard]] Value* find(const Key& key) {
    if (table_) return table_->find(key);
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  Value& put(const Key& key, Value value) {
    if (table_) return table_->put(key, std::move(value));
    return map_.insert_or_assign(key, std::move(value)).first->second;
  }

  std::pair<Value*, bool> try_emplace(const Key& key) {
    if (table_) return table_->try_emplace(key);
    auto [it, inserted] = map_.try_emplace(key);
    return {&it->second, inserted};
  }

  void prefetch(const Key& key) const {
    if (table_) table_->prefetch(key);
  }

  // Mark the leased table for eager value destruction on release — set
  // when an analysis is cancelled mid-flight and its partial results
  // must not linger in stale slots. No-op in map mode: the map dies
  // with the facade anyway.
  void purge_on_release() noexcept { purge_on_release_ = true; }

 private:
  static constexpr std::size_t kMaxPooled = 8;

  static std::vector<std::unique_ptr<Table>>& pool() {
    thread_local std::vector<std::unique_ptr<Table>> free_list;
    return free_list;
  }

  std::unique_ptr<Table> table_;
  bool purge_on_release_ = false;
  std::unordered_map<Key, Value, Hash> map_;
};

}  // namespace gtdl
