// Deterministic fault injection for the recovery-path test suite.
//
// The resource-governance layer promises that a failure anywhere in the
// concurrent core — an allocation that throws, a task that dies, a memo
// owner that never publishes, a parser that gives up — unwinds to a
// per-file exit-2 report instead of a hang or a crash. This harness makes
// those failures reproducible: instrumented points call
// fault::maybe_inject("point"), which throws FaultInjected according to a
// configured (point, rate, seed) triple.
//
// Configuration: the GTDL_FAULT environment variable or fdlc --fault,
// both in the form `point:rate:seed` (e.g. `memo:1:42`); programmatic
// configure()/clear() for tests. Exactly one point is armed at a time —
// the suites exercise one failure mode per run, at rate 1.0 for
// exhaustive coverage and fractional rates for determinism checks.
//
// Determinism: the decision for the k-th arrival at a point is
// splitmix64(seed ^ k) < rate * 2^64 — a pure function of (seed, point,
// arrival index). Single-threaded runs therefore inject at exactly the
// same calls every time; multi-threaded runs see the same NUMBER of
// injections for a given arrival count (the per-point arrival counter is
// atomic) with rate 1.0 injecting at every arrival regardless of
// interleaving.
//
// Instrumented points (docs/ROBUSTNESS.md "Fault-point catalog"):
//   parse  entry of parse_gtype and the FutLang/MiniML compilers
//   alloc  CSR lowering and the stream enumerator's buffer growth
//   task   thread-pool submission (ThreadPool::submit, TaskGroup::run),
//          before any queue or cell state changes
//   memo   the parallel engine's memo-owner publish path, before the
//          successful publish (exercises the owner-failure protocol:
//          publish-invalid, rethrow, waiters wake and recompute)
//
// Zero cost when unarmed: every site checks one process-global relaxed
// atomic and branches away.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace gtdl::fault {

// Deliberately NOT derived from std::exception: a non-std throw is
// exactly the escape the corpus driver's catch-all fallback exists for,
// and the fault suite must be able to exercise that path.
struct FaultInjected {
  const char* point;  // static string: the armed point's name
};

namespace detail {
// "Is any fault armed" — the only thing an unarmed hot path reads.
inline std::atomic<bool> g_armed{false};
[[noreturn]] void inject(const char* point);
bool should_inject(const char* point) noexcept;
}  // namespace detail

// Arms the harness from a `point:rate:seed` spec. rate is a decimal in
// [0, 1]; seed a u64. Returns false (and fills *error when given) on a
// malformed spec. Reconfiguring replaces the previous fault and resets
// the arrival counter.
bool configure(std::string_view spec, std::string* error = nullptr);

// Arms from the GTDL_FAULT environment variable if set. Returns false
// only when the variable is present but malformed.
bool configure_from_env(std::string* error = nullptr);

// Disarms and resets counters.
void clear() noexcept;

[[nodiscard]] inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

// Total faults injected since the last configure()/clear().
[[nodiscard]] std::uint64_t injected_count() noexcept;

// The instrumented-point probe. Unarmed: one relaxed load. Armed: if
// `point` matches the configured point, charges one arrival and throws
// FaultInjected according to the configured rate.
inline void maybe_inject(const char* point) {
  if (!armed()) return;
  if (detail::should_inject(point)) detail::inject(point);
}

}  // namespace gtdl::fault
