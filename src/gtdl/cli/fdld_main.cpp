// fdld — persistent futures-deadlock-analysis daemon.
//
// One long-lived process keeps the graph-type interner, the analysis
// memo pools and a two-level verdict cache warm across requests, so an
// editor or CI driver pays the cold-start cost once:
//
//   fdld --socket /tmp/fdld.sock --jobs 8        serve a unix socket
//   fdld --stdio                                 serve stdin/stdout
//   fdld --socket S --warm-start snap.bin        pre-load an interner
//                                                snapshot (cold fallback
//                                                on any mismatch)
//   fdld --socket S --snapshot snap.bin          write a snapshot after
//                                                the serve loop exits
//
// Protocol: newline-delimited JSON, one request per line (see
// service/protocol.hpp and README "fdld"); scripts/fdld_client.py is the
// reference client. Analysis flags (--no-new-push, --max-iters,
// --baseline, --unrolls, --timeout-ms, --budget-steps, --budget-mb) set
// the DAEMON DEFAULTS; requests may override per call. --cache-mb bounds
// the verdict cache (LRU eviction past it; default 64).
//
// Exit code: 0 after a clean shutdown request or stdio EOF, 1 on a
// socket-level failure, 2 on a usage error.

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "gtdl/service/daemon.hpp"
#include "gtdl/service/service.hpp"
#include "gtdl/service/snapshot.hpp"
#include "gtdl/support/sigpipe.hpp"

namespace {

struct DaemonCli {
  bool stdio = false;
  std::string socket_path;
  std::string warm_start_path;
  std::string snapshot_path;
  gtdl::service::ServiceOptions service;
};

void usage() {
  std::cerr <<
      "usage: fdld --socket PATH [options]\n"
      "       fdld --stdio [options]\n"
      "options: --jobs N --cache-mb N --warm-start FILE --snapshot FILE\n"
      "         --no-new-push --max-iters N --baseline --unrolls N\n"
      "         --timeout-ms N --budget-steps N --budget-mb N\n"
      "notes:   --jobs 0 means \"one worker per hardware thread\";\n"
      "         analysis options are daemon defaults, overridable per\n"
      "         request (see README \"fdld\")\n";
}

bool parse_u64(const std::string& flag, const char* v, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE ||
      std::strchr(v, '-') != nullptr) {
    std::cerr << "fdld: invalid number '" << v << "' for " << flag << "\n";
    return false;
  }
  out = x;
  return true;
}

bool parse_u32(const std::string& flag, const char* v, unsigned& out) {
  std::uint64_t x = 0;
  if (!parse_u64(flag, v, x)) return false;
  if (x > 0xffffffffull) {
    std::cerr << "fdld: value '" << v << "' for " << flag
              << " is out of range\n";
    return false;
  }
  out = static_cast<unsigned>(x);
  return true;
}

std::optional<DaemonCli> parse_args(int argc, char** argv) {
  DaemonCli cli;
  std::uint64_t cache_mb = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "fdld: missing value for " << arg << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--stdio") {
      cli.stdio = true;
    } else if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      cli.socket_path = v;
    } else if (arg == "--warm-start") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      cli.warm_start_path = v;
    } else if (arg == "--snapshot") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      cli.snapshot_path = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !parse_u32(arg, v, cli.service.jobs)) {
        return std::nullopt;
      }
      if (cli.service.jobs == 0) {
        cli.service.jobs = std::max(1u, std::thread::hardware_concurrency());
      }
    } else if (arg == "--cache-mb") {
      const char* v = next();
      if (v == nullptr || !parse_u64(arg, v, cache_mb)) return std::nullopt;
    } else if (arg == "--no-new-push") {
      cli.service.defaults.new_push = false;
    } else if (arg == "--baseline") {
      cli.service.defaults.baseline = true;
    } else if (arg == "--max-iters") {
      const char* v = next();
      if (v == nullptr ||
          !parse_u32(arg, v, cli.service.defaults.max_iters)) {
        return std::nullopt;
      }
      if (cli.service.defaults.max_iters == 0) {
        std::cerr << "fdld: --max-iters must be >= 1\n";
        return std::nullopt;
      }
    } else if (arg == "--unrolls") {
      const char* v = next();
      if (v == nullptr || !parse_u32(arg, v, cli.service.defaults.unrolls)) {
        return std::nullopt;
      }
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr ||
          !parse_u64(arg, v, cli.service.defaults.timeout_ms)) {
        return std::nullopt;
      }
    } else if (arg == "--budget-steps") {
      const char* v = next();
      if (v == nullptr ||
          !parse_u64(arg, v, cli.service.defaults.budget_steps)) {
        return std::nullopt;
      }
    } else if (arg == "--budget-mb") {
      const char* v = next();
      if (v == nullptr ||
          !parse_u64(arg, v, cli.service.defaults.budget_mb)) {
        return std::nullopt;
      }
    } else {
      std::cerr << "fdld: unknown option " << arg << "\n";
      return std::nullopt;
    }
  }
  if (cli.stdio != cli.socket_path.empty()) {
    // Exactly one transport: --stdio XOR --socket.
    usage();
    return std::nullopt;
  }
  cli.service.cache_quota_bytes =
      static_cast<std::size_t>(cache_mb) * 1024 * 1024;
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  // A client that hangs up mid-response must cost one connection, not
  // the daemon: with SIGPIPE ignored the per-connection write_all sees
  // EPIPE and drops just that connection.
  gtdl::ignore_sigpipe();
  const auto cli = parse_args(argc, argv);
  if (!cli) return 2;

  gtdl::service::Service service(cli->service);

  if (!cli->warm_start_path.empty()) {
    const gtdl::service::SnapshotLoadResult loaded =
        service.warm_start(cli->warm_start_path);
    if (loaded.ok) {
      std::cerr << "fdld: warm start: " << loaded.nodes
                << " nodes replayed from " << cli->warm_start_path
                << (loaded.ids_identical ? " (ids identical)" : "") << "\n";
    } else {
      // The documented safety contract: a bad snapshot costs warmth,
      // never correctness — diagnose and continue cold.
      std::cerr << "fdld: warm start failed (" << loaded.error
                << "); starting cold\n";
    }
  }

  int code = 0;
  if (cli->stdio) {
    code = gtdl::service::run_stdio(service, std::cin, std::cout);
  } else {
    std::cerr << "fdld: serving " << cli->socket_path << "\n";
    code = gtdl::service::run_socket(service, cli->socket_path, std::cerr);
  }

  if (!cli->snapshot_path.empty()) {
    const gtdl::service::SnapshotWriteResult written =
        gtdl::service::save_snapshot(cli->snapshot_path);
    if (written.ok) {
      std::cerr << "fdld: wrote snapshot: " << written.nodes << " nodes, "
                << written.bytes << " bytes at " << cli->snapshot_path
                << "\n";
    } else {
      std::cerr << "fdld: snapshot failed: " << written.error << "\n";
      if (code == 0) code = 1;
    }
  }
  return code;
}
