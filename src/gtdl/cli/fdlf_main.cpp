// fdlf — futures deadlock fuzzer: the differential fuzzing farm's CLI
// (docs/ROBUSTNESS.md "The fuzzing farm", EXPERIMENTS.md E16).
//
//   fdlf --programs 500 --jobs 4            classify 500 seeded programs
//   fdlf --duration-s 60 --jobs 2
//        --findings out/ --bench-json bench_fuzz.json
//   fdlf --replay 12345                     re-run one seed, print program
//                                           and classification
//
// Options:
//   --jobs N            worker processes (default 2; 0 = one per core)
//   --programs N        count mode: classify exactly N programs (seed set
//                       is independent of --jobs)
//   --duration-s S      duration mode: run for S wall-clock seconds
//   --seed-base K       first seed (default 1)
//   --findings DIR      write shrunk reproducers (+ originals) here
//   --bench-json FILE   machine-readable run summary (schema: E16)
//   --run-seeds N       interpreter executions per program (default 3)
//   --timeout-ms N      per-program budget for the static analysis and
//                       each execution (default 2000; 0 = unlimited)
//   --budget-steps N    per-program analysis step quota
//   --budget-mb N       per-program analysis arena quota
//   --fault P:R:S       arm deterministic fault injection inside every
//                       classification (re-armed per program)
//   --no-shrink         record findings without minimizing them
//   --shrink-max N      shrink candidate cap per finding (default 2000)
//   --max-restarts N    worker-respawn storm cap (default 8)
//   --hang-timeout-ms N hung-worker watchdog (default 10000; 0 = off)
//   --kill-seed K       test hook: abort() the worker that reaches seed K
//   --replay SEED       classify one seed in-process and exit
//   --progress          stream progress lines to stderr
//   --stats             end-of-run metrics summary on stderr
//
// Exit codes: 0 = clean, 1 = UNSOUND finding (static claimed freedom,
// an execution deadlocked — release blocker), 2 = usage error or the
// farm itself failed (restart storm), 4 = crash-grade or generator
// findings but nothing unsound.

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "gtdl/fuzz/farm.hpp"
#include "gtdl/fuzz/oracle.hpp"
#include "gtdl/fuzz/random_program.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/support/sigpipe.hpp"

namespace {

struct CliOptions {
  gtdl::fuzz::FarmOptions farm;
  bool replay = false;
  std::uint64_t replay_seed = 0;
  bool stats = false;
};

void usage() {
  std::cerr <<
      "usage: fdlf [--programs N | --duration-s S] [options]\n"
      "       fdlf --replay SEED [options]\n"
      "options: --jobs N --seed-base K --findings DIR --bench-json FILE\n"
      "         --run-seeds N --timeout-ms N --budget-steps N --budget-mb N\n"
      "         --fault POINT:RATE:SEED --no-shrink --shrink-max N\n"
      "         --max-restarts N --hang-timeout-ms N --kill-seed K\n"
      "         --progress --stats\n";
}

bool parse_u64(const std::string& flag, const char* v, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE ||
      std::strchr(v, '-') != nullptr) {
    std::cerr << "fdlf: invalid number '" << v << "' for " << flag << "\n";
    return false;
  }
  out = x;
  return true;
}

bool parse_u32(const std::string& flag, const char* v, unsigned& out) {
  std::uint64_t x = 0;
  if (!parse_u64(flag, v, x)) return false;
  if (x > 0xffffffffull) {
    std::cerr << "fdlf: value '" << v << "' for " << flag
              << " is out of range\n";
    return false;
  }
  out = static_cast<unsigned>(x);
  return true;
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "fdlf: missing value for " << arg << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !parse_u32(arg, v, opts.farm.jobs)) {
        return std::nullopt;
      }
      if (opts.farm.jobs == 0) {
        opts.farm.jobs = std::max(1u, std::thread::hardware_concurrency());
      }
    } else if (arg == "--programs") {
      const char* v = next();
      if (v == nullptr || !parse_u64(arg, v, opts.farm.max_programs)) {
        return std::nullopt;
      }
    } else if (arg == "--duration-s") {
      const char* v = next();
      std::uint64_t s = 0;
      if (v == nullptr || !parse_u64(arg, v, s)) return std::nullopt;
      opts.farm.duration_s = static_cast<double>(s);
    } else if (arg == "--seed-base") {
      const char* v = next();
      if (v == nullptr || !parse_u64(arg, v, opts.farm.seed_base)) {
        return std::nullopt;
      }
    } else if (arg == "--findings") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.farm.findings_dir = v;
    } else if (arg == "--bench-json") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.farm.bench_json = v;
    } else if (arg == "--run-seeds") {
      const char* v = next();
      if (v == nullptr || !parse_u32(arg, v, opts.farm.oracle.run_seeds)) {
        return std::nullopt;
      }
      if (opts.farm.oracle.run_seeds == 0) {
        std::cerr << "fdlf: --run-seeds must be >= 1 (zero executions "
                     "cannot confirm anything)\n";
        return std::nullopt;
      }
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr || !parse_u64(arg, v, opts.farm.oracle.timeout_ms)) {
        return std::nullopt;
      }
    } else if (arg == "--budget-steps") {
      const char* v = next();
      if (v == nullptr ||
          !parse_u64(arg, v, opts.farm.oracle.budget_steps)) {
        return std::nullopt;
      }
    } else if (arg == "--budget-mb") {
      const char* v = next();
      if (v == nullptr || !parse_u64(arg, v, opts.farm.oracle.budget_mb)) {
        return std::nullopt;
      }
    } else if (arg == "--fault") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.farm.oracle.fault_spec = v;
    } else if (arg == "--no-shrink") {
      opts.farm.shrink = false;
    } else if (arg == "--shrink-max") {
      const char* v = next();
      std::uint64_t n = 0;
      if (v == nullptr || !parse_u64(arg, v, n)) return std::nullopt;
      opts.farm.shrink_max_candidates = static_cast<std::size_t>(n);
    } else if (arg == "--max-restarts") {
      const char* v = next();
      if (v == nullptr || !parse_u32(arg, v, opts.farm.max_restarts)) {
        return std::nullopt;
      }
    } else if (arg == "--hang-timeout-ms") {
      const char* v = next();
      if (v == nullptr ||
          !parse_u64(arg, v, opts.farm.hang_timeout_ms)) {
        return std::nullopt;
      }
    } else if (arg == "--kill-seed") {
      const char* v = next();
      if (v == nullptr || !parse_u64(arg, v, opts.farm.kill_seed)) {
        return std::nullopt;
      }
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr || !parse_u64(arg, v, opts.replay_seed)) {
        return std::nullopt;
      }
      opts.replay = true;
    } else if (arg == "--progress") {
      opts.farm.progress = true;
    } else if (arg == "--stats") {
      opts.stats = true;
    } else {
      std::cerr << "fdlf: unknown option " << arg << "\n";
      usage();
      return std::nullopt;
    }
  }
  if (!opts.replay && opts.farm.duration_s > 0 &&
      opts.farm.max_programs > 0) {
    std::cerr << "fdlf: --programs and --duration-s are exclusive\n";
    return std::nullopt;
  }
  if (!opts.replay && opts.farm.duration_s == 0 &&
      opts.farm.max_programs == 0) {
    // A bare `fdlf` should do something useful and bounded.
    opts.farm.max_programs = 200;
  }
  return opts;
}

int outcome_exit_code(gtdl::fuzz::Outcome outcome) {
  using gtdl::fuzz::Outcome;
  if (outcome == Outcome::kUnsound) return 1;
  return gtdl::fuzz::is_finding(outcome) ? 4 : 0;
}

int run_replay(const CliOptions& opts) {
  std::string program;
  const gtdl::fuzz::OracleResult r = gtdl::fuzz::replay_seed(
      opts.replay_seed, opts.farm.oracle, &program);
  std::cout << "--- seed " << opts.replay_seed << " (rng "
            << gtdl::fuzz::kRngStreamVersion << ") ---\n"
            << program << "---\n";
  std::cout << "outcome: " << to_string(r.outcome) << "\n";
  if (!r.static_verdict.empty()) {
    std::cout << "static verdict: " << r.static_verdict << "\n";
  }
  std::cout << "deadlocked runs: " << r.deadlocked_runs << "/"
            << opts.farm.oracle.run_seeds << "\n";
  if (!r.detail.empty()) std::cout << "detail: " << r.detail << "\n";
  return outcome_exit_code(r.outcome);
}

int run_farm_cli(const CliOptions& opts) {
  using gtdl::fuzz::FarmReport;
  using gtdl::fuzz::Finding;
  using gtdl::fuzz::Outcome;
  const FarmReport report = gtdl::fuzz::run_farm(opts.farm);
  if (!report.error.empty()) {
    std::cerr << "fdlf: " << report.error << "\n";
  }
  if (report.restart_storm) {
    std::cerr << "fdlf: worker restart storm (" << report.worker_restarts
              << " respawns) — the harness itself is broken, aborting\n";
  }
  std::cout << "programs: " << report.programs << " in "
            << report.elapsed_s << " s";
  if (report.elapsed_s > 0) {
    std::cout << " (" << static_cast<std::uint64_t>(
                             report.programs / report.elapsed_s)
              << "/s)";
  }
  std::cout << "\n";
  for (unsigned i = 0; i < gtdl::fuzz::kOutcomeCount; ++i) {
    if (report.counts[i] == 0) continue;
    std::cout << "  " << to_string(static_cast<Outcome>(i)) << ": "
              << report.counts[i] << "\n";
  }
  std::cout << "precision: " << report.precision()
            << "  unknown rate: " << report.unknown_rate()
            << "  restarts: " << report.worker_restarts << "\n";
  for (const Finding& f : report.findings) {
    std::cout << "FINDING " << to_string(f.outcome) << " seed " << f.seed
              << (f.shrunk.empty()
                      ? ""
                      : (f.one_minimal ? " (shrunk, 1-minimal)"
                                       : " (shrunk)"))
              << ": " << f.detail << "\n";
  }
  if (!opts.farm.findings_dir.empty() && !report.findings.empty()) {
    std::cout << "findings written to " << opts.farm.findings_dir << "\n";
  }
  if (!opts.farm.bench_json.empty() && report.error.empty()) {
    std::cout << "bench summary written to " << opts.farm.bench_json << "\n";
  }
  return report.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  gtdl::ignore_sigpipe();
  const auto opts = parse_args(argc, argv);
  if (!opts) return 2;
  if (opts->stats) gtdl::obs::set_stats_enabled(true);
  int exit_code = 2;
  try {
    exit_code = opts->replay ? run_replay(*opts) : run_farm_cli(*opts);
  } catch (const std::exception& e) {
    std::cerr << "fdlf: internal error: " << e.what() << "\n";
  } catch (...) {
    std::cerr << "fdlf: internal error: unknown exception\n";
  }
  if (opts->stats) {
    std::cerr << gtdl::obs::MetricsRegistry::instance().render_text();
  }
  // Same broken-pipe contract as fdlc: a truncated report must not look
  // like a clean run.
  std::cout.flush();
  if (std::cout.fail()) {
    std::cerr << "fdlf: report truncated (broken pipe or failed write)\n";
    return std::max(exit_code, 2);
  }
  return exit_code;
}
