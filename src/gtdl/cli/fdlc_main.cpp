// fdlc — futures deadlock checker.
//
// The end-to-end driver for the whole pipeline:
//
//   fdlc program.fut                  analyze a FutLang program
//   fdlc program.mml                  analyze a MiniML program (by extension)
//   fdlc --gtype 'new u. 1/u ; ~u'    analyze a graph type directly
//   fdlc --gtype-file type.gt         ... from a file
//   fdlc --jobs 8 a.fut b.mml c.gt    batched corpus mode: analyze every
//                                     file, N-way parallel, over one
//                                     shared interner; reports print in
//                                     input order and the exit code is
//                                     the worst per-file code
//   fdlc --ingest 'dump.*.json'       merge a runtime trace dump
//                                     (docs/TRACE_FORMAT.md) and judge
//                                     the OBSERVED dependency graph;
//                                     several patterns = one dump set
//                                     each, --jobs N parallel
//
// Options (the full reference with examples lives in README "CLI
// reference" and docs/OBSERVABILITY.md):
//   --jobs N            analysis parallelism (default 1). With one input
//                       the parallel engine runs inside its analysis;
//                       with several inputs it fans out across files
//   --dump-gtype        print the inferred (and new-pushed) graph types
//   --no-new-push       disable the §5 "new pushing" transformation
//   --max-iters N       Mycroft iteration cap for inference (default 2,
//                       GML-faithful; the §3 m>=2 family needs more)
//   --baseline          also run the (unsound) GML unrolling baseline
//   --unrolls N         baseline per-binding unroll bound (default 2)
//   --run               execute the program; report the dynamic verdict
//                       and judge the trace under Transitive/Known Joins
//   --trace-graph BASE  with --run: dump the execution's dependency
//                       trace as BASE.<k>.json shards (the
//                       GTDL_GRAPH_DUMP env var is the equivalent, and
//                       also works for FutureRuntime embedders)
//   --rand a,b,c        rand() script for --run
//   --seed N            rand() fallback seed for --run
//   --dot FILE          write the executed dependency graph as Graphviz
//   --print-trace       print the executed trace (was --trace before the
//                       observability layer claimed that name)
//   --stats             end-of-run metrics summary on stderr
//   --stats=json        ... as JSON on stderr
//   --stats=json:FILE   ... as JSON into FILE
//   --trace FILE        write a Chrome-trace/Perfetto JSON of the run
//   --timeout-ms N      per-input wall-clock deadline; past it the
//                       analysis stops and reports UNKNOWN (exit 3)
//   --budget-steps N    per-input analysis step quota (same semantics)
//   --budget-mb N       per-input analysis arena memory quota (same)
//   --fault P:R:S       arm the deterministic fault-injection harness at
//                       point P with rate R and seed S (testing; the
//                       GTDL_FAULT env var is the equivalent)
//
// Exit code: 0 = analyzed deadlock-free, 1 = possible deadlock reported,
// 2 = usage/compile error, 3 = analysis gave up (resource budget
// exhausted; the verdict is unknown). Corpus mode exits with the maximum
// over its files. In --ingest mode the same codes read OBSERVED: 0 = no
// deadlock observed (one execution; not a freedom proof), 1 = the traced
// execution deadlocked, 2 = malformed dump, 3 = budget exhausted — the
// full table lives in README "CLI reference".

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/mml/driver.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/par/corpus.hpp"
#include "gtdl/par/engine.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/parse.hpp"
#include "gtdl/gtype/wellformed.hpp"
#include "gtdl/ingest/ingest.hpp"
#include "gtdl/ingest/trace_writer.hpp"
#include "gtdl/support/budget.hpp"
#include "gtdl/support/fault.hpp"
#include "gtdl/support/sigpipe.hpp"
#include "gtdl/tj/join_policy.hpp"

namespace {

enum class StatsMode { kOff, kText, kJson };

struct CliOptions {
  std::vector<std::string> program_files;
  unsigned jobs = 1;
  std::string gtype_text;
  std::string gtype_file;
  bool dump_gtype = false;
  bool new_push = true;
  unsigned max_iters = 2;
  bool baseline = false;
  unsigned unrolls = 2;
  bool run = false;
  // --ingest: program_files holds dump-set glob patterns, not sources.
  bool ingest = false;
  // --trace-graph BASE (with --run): dump the execution's dependency
  // trace as BASE.<k>.json.
  std::string trace_graph_base;
  std::vector<std::int64_t> rand_script;
  std::uint64_t seed = 1;
  std::string dot_file;
  bool print_trace = false;
  StatsMode stats = StatsMode::kOff;
  std::string stats_file;  // empty = stderr
  std::string trace_file;  // empty = tracing off
  // Resource budget, per input (per file in corpus mode); 0 = unlimited.
  std::uint64_t timeout_ms = 0;
  std::uint64_t budget_steps = 0;
  std::uint64_t budget_mb = 0;
  std::string fault_spec;  // point:rate:seed; empty = unarmed
};

bool has_budget(const CliOptions& opts) {
  return opts.timeout_ms != 0 || opts.budget_steps != 0 ||
         opts.budget_mb != 0;
}

gtdl::Budget::Limits budget_limits(const CliOptions& opts) {
  gtdl::Budget::Limits limits;
  limits.deadline_ms = opts.timeout_ms;
  limits.max_steps = opts.budget_steps;
  limits.max_bytes = opts.budget_mb * 1024 * 1024;
  return limits;
}

void usage() {
  std::cerr <<
      "usage: fdlc <program.fut> [<more files>...] [options]\n"
      "       fdlc --gtype '<graph type>' [options]\n"
      "       fdlc --gtype-file <file> [options]\n"
      "       fdlc --ingest '<dump.*.json>' [<more patterns>...] [options]\n"
      "options: --jobs N --dump-gtype --no-new-push --max-iters N\n"
      "         --baseline --unrolls N --run --rand a,b,c --seed N\n"
      "         --trace-graph BASE --dot FILE --print-trace\n"
      "         --stats[=json[:FILE]] --trace FILE --timeout-ms N\n"
      "         --budget-steps N --budget-mb N --fault POINT:RATE:SEED\n"
      "notes:   --jobs 0 means \"one worker per hardware thread\";\n"
      "         --max-iters must be >= 1 (0 is rejected: zero Mycroft\n"
      "         iterations cannot infer any signature)\n";
}

// Strict numeric parsing: std::stoul would abort fdlc with an uncaught
// exception on `--jobs foo` and silently accept `--jobs 8x`.
bool parse_u64(const std::string& flag, const char* v, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE ||
      std::strchr(v, '-') != nullptr) {
    std::cerr << "fdlc: invalid number '" << v << "' for " << flag << "\n";
    return false;
  }
  out = x;
  return true;
}

bool parse_u32(const std::string& flag, const char* v, unsigned& out) {
  std::uint64_t x = 0;
  if (!parse_u64(flag, v, x) || x > 0xffffffffull) {
    if (x > 0xffffffffull) {
      std::cerr << "fdlc: value '" << v << "' for " << flag
                << " is out of range\n";
    }
    return false;
  }
  out = static_cast<unsigned>(x);
  return true;
}

bool parse_i64(const std::string& flag, const char* v, std::int64_t& out) {
  errno = 0;
  char* end = nullptr;
  const long long x = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) {
    std::cerr << "fdlc: invalid number '" << v << "' for " << flag << "\n";
    return false;
  }
  out = x;
  return true;
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "fdlc: missing value for " << arg << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--dump-gtype") {
      opts.dump_gtype = true;
    } else if (arg == "--no-new-push") {
      opts.new_push = false;
    } else if (arg == "--baseline") {
      opts.baseline = true;
    } else if (arg == "--run") {
      opts.run = true;
    } else if (arg == "--ingest") {
      opts.ingest = true;
    } else if (arg == "--trace-graph") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.trace_graph_base = v;
    } else if (arg == "--print-trace") {
      opts.print_trace = true;
    } else if (arg == "--stats") {
      opts.stats = StatsMode::kText;
    } else if (arg.rfind("--stats=", 0) == 0) {
      const std::string value = arg.substr(8);
      if (value == "json") {
        opts.stats = StatsMode::kJson;
      } else if (value.rfind("json:", 0) == 0 && value.size() > 5) {
        opts.stats = StatsMode::kJson;
        opts.stats_file = value.substr(5);
      } else {
        std::cerr << "fdlc: bad --stats format '" << value
                  << "' (expected json or json:FILE)\n";
        return std::nullopt;
      }
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.trace_file = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !parse_u32(arg, v, opts.jobs)) return std::nullopt;
      if (opts.jobs == 0) {
        // Documented meaning (see usage()): one worker per hardware
        // thread. hardware_concurrency may itself report 0 (unknown);
        // fall back to 1 rather than guessing.
        opts.jobs = std::max(1u, std::thread::hardware_concurrency());
      }
    } else if (arg == "--max-iters") {
      const char* v = next();
      if (v == nullptr || !parse_u32(arg, v, opts.max_iters)) {
        return std::nullopt;
      }
      if (opts.max_iters == 0) {
        std::cerr << "fdlc: --max-iters must be >= 1 (zero Mycroft "
                     "iterations cannot infer any signature)\n";
        return std::nullopt;
      }
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr || !parse_u64(arg, v, opts.timeout_ms)) {
        return std::nullopt;
      }
    } else if (arg == "--budget-steps") {
      const char* v = next();
      if (v == nullptr || !parse_u64(arg, v, opts.budget_steps)) {
        return std::nullopt;
      }
    } else if (arg == "--budget-mb") {
      const char* v = next();
      if (v == nullptr || !parse_u64(arg, v, opts.budget_mb)) {
        return std::nullopt;
      }
    } else if (arg == "--fault") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.fault_spec = v;
    } else if (arg == "--unrolls") {
      const char* v = next();
      if (v == nullptr || !parse_u32(arg, v, opts.unrolls)) {
        return std::nullopt;
      }
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !parse_u64(arg, v, opts.seed)) return std::nullopt;
    } else if (arg == "--rand") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      std::stringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ',')) {
        std::int64_t x = 0;
        if (!parse_i64(arg, item.c_str(), x)) return std::nullopt;
        opts.rand_script.push_back(x);
      }
    } else if (arg == "--dot") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.dot_file = v;
    } else if (arg == "--gtype") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.gtype_text = v;
    } else if (arg == "--gtype-file") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.gtype_file = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fdlc: unknown option " << arg << "\n";
      return std::nullopt;
    } else {
      opts.program_files.push_back(arg);
    }
  }
  const int inputs = (!opts.program_files.empty() ? 1 : 0) +
                     (!opts.gtype_text.empty() ? 1 : 0) +
                     (!opts.gtype_file.empty() ? 1 : 0);
  if (inputs != 1) {
    usage();
    return std::nullopt;
  }
  if (opts.ingest) {
    if (opts.run || opts.baseline || !opts.gtype_text.empty() ||
        !opts.gtype_file.empty() || !opts.trace_graph_base.empty()) {
      std::cerr << "fdlc: --ingest takes dump patterns only (not combinable "
                   "with --run/--baseline/--gtype/--trace-graph)\n";
      return std::nullopt;
    }
    if (opts.program_files.empty()) {
      std::cerr << "fdlc: --ingest needs at least one dump pattern, e.g. "
                   "'graphdump.*.json'\n";
      return std::nullopt;
    }
    if (!opts.dot_file.empty() && opts.program_files.size() != 1) {
      std::cerr << "fdlc: --dot with --ingest requires exactly one dump "
                   "set\n";
      return std::nullopt;
    }
  }
  if (opts.run && opts.program_files.size() != 1) {
    std::cerr << "fdlc: --run requires exactly one FutLang program (no "
                 "corpus mode)\n";
    return std::nullopt;
  }
  if (!opts.trace_graph_base.empty() && !opts.run) {
    std::cerr << "fdlc: --trace-graph requires --run (it dumps the "
                 "executed dependency trace)\n";
    return std::nullopt;
  }
  return opts;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fdlc: cannot open '" << path << "'\n";
    return std::nullopt;
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// `budget` is this input's resource budget (null = unlimited). A trip
// prints UNKNOWN and returns 3. Budget-exhausted lines deliberately
// exclude counts (elapsed ms, graphs scanned) so verdict text is
// byte-identical across runs and --jobs settings.
int analyze_gtype(const gtdl::GTypePtr& gtype, const CliOptions& opts,
                  gtdl::Engine* engine, gtdl::Budget* budget) {
  using namespace gtdl;
  const auto give_up = [&](const char* stage) {
    std::cout << stage << ": UNKNOWN ("
              << (budget != nullptr ? budget->status().render()
                                    : std::string("budget exhausted"))
              << ")\n";
    return 3;
  };
  if (opts.dump_gtype) {
    std::cout << "graph type: " << to_string(gtype) << "\n";
  }
  const WellformedResult wf = check_wellformed(gtype, budget);
  if (wf.budget_exhausted) return give_up("well-formedness");
  if (!wf.ok) {
    std::cout << "well-formedness: REJECTED\n" << wf.diags.render();
    return 1;
  }
  std::cout << "well-formedness: ok (kind " << to_string(wf.kind) << ")\n";

  DetectOptions detect;
  detect.new_pushing = opts.new_push;
  detect.engine = engine;
  detect.budget = budget;
  const DeadlockVerdict verdict = check_deadlock_freedom(gtype, detect);
  if (verdict.verdict == Verdict::kUnknown) {
    return give_up("deadlock analysis");
  }
  if (opts.dump_gtype && opts.new_push) {
    std::cout << "after new pushing: " << to_string(verdict.analyzed)
              << "\n";
  }
  if (verdict.deadlock_free) {
    std::cout << "deadlock analysis: DEADLOCK-FREE (accepted)\n";
  } else {
    std::cout << "deadlock analysis: POSSIBLE DEADLOCK (rejected)\n"
              << verdict.diags.render();
  }

  int code = verdict.deadlock_free ? 0 : 1;
  if (opts.baseline) {
    GmlBaselineOptions baseline_options;
    baseline_options.unrolls_per_binding = opts.unrolls;
    baseline_options.engine = engine;
    baseline_options.limits.budget = budget;
    if (budget != nullptr) {
      // With an explicit resource budget the budget governs, not the
      // static enumeration caps — otherwise a cap would silently
      // truncate long before the user's deadline and report a bogus
      // "deadlock-free" over a tiny prefix.
      baseline_options.limits.max_graphs = static_cast<std::size_t>(-1);
      baseline_options.limits.max_steps = static_cast<std::size_t>(-1);
    }
    const GmlBaselineReport report =
        gml_baseline_check(gtype, baseline_options);
    if (report.unknown) {
      std::cout << "gml baseline (" << report.unrolls_per_binding
                << " unrolls/binding): UNKNOWN (" << report.budget.render()
                << ")\n";
      // A definite DF rejection stands; a clean DF verdict is demoted to
      // unknown because the baseline scan never finished.
      if (code == 0) code = 3;
      return code;
    }
    std::cout << "gml baseline (" << report.unrolls_per_binding
              << " unrolls/binding, " << report.graphs_checked
              << " graphs" << (report.truncated ? ", TRUNCATED" : "")
              << "): "
              << (report.deadlock_reported ? "reports deadlock"
                                           : "reports deadlock-free")
              << "\n";
    if (report.deadlock_reported) {
      std::cout << "  witness: " << report.witness << "\n";
    }
  }
  return code;
}

int run_program(const gtdl::Program& program, const CliOptions& opts) {
  using namespace gtdl;
  gtdl::obs::Span span("cli", "run_program");
  InterpOptions interp_options;
  interp_options.rand_script = opts.rand_script;
  interp_options.seed = opts.seed;
  // The --run watchdog: the same flags that bound the static analysis
  // bound execution (a deadline plus the step quota; arena memory does
  // not apply to the interpreter).
  std::optional<Budget> watchdog;
  if (has_budget(opts)) watchdog.emplace(budget_limits(opts));
  interp_options.budget = watchdog ? &*watchdog : nullptr;
  // --trace-graph (or the GTDL_GRAPH_DUMP env equivalent): record the
  // execution's dependency trace for later `fdlc --ingest`. A deadlocked
  // execution still flushes a complete, re-ingestable dump.
  std::string dump_base = opts.trace_graph_base;
  if (dump_base.empty()) {
    if (const char* env = std::getenv("GTDL_GRAPH_DUMP");
        env != nullptr && *env != '\0') {
      dump_base = env;
    }
  }
  std::optional<ingest::TraceDumpWriter> dump;
  if (!dump_base.empty()) {
    ingest::TraceDumpWriter::Options dump_options;
    dump_options.program = opts.program_files.front();
    dump.emplace(dump_base, dump_options);
    interp_options.graph_dump = &*dump;
  }
  const InterpResult result = interpret(program, interp_options);
  if (!result.output.empty()) {
    std::cout << "--- program output ---\n" << result.output
              << "----------------------\n";
  }
  if (result.error.has_value()) {
    std::cout << "execution: runtime error: " << *result.error << "\n";
  } else if (result.deadlock.has_value()) {
    std::cout << "execution: DEADLOCKED: " << *result.deadlock << "\n";
  } else {
    std::cout << "execution: completed (" << result.steps << " steps)\n";
  }
  const GroundDeadlock ground = result.graph_deadlock();
  std::cout << "executed graph: "
            << (ground.any() ? "contains a deadlock" : "deadlock-free")
            << " (" << node_count(*result.graph) << " nodes)\n";
  const TraceVerdict tj = check_transitive_joins(result.trace);
  const TraceVerdict kj = check_known_joins(result.trace);
  std::cout << "transitive joins: "
            << (tj.valid ? "valid" : "INVALID: " + tj.reason) << "\n";
  std::cout << "known joins: "
            << (kj.valid ? "valid" : "INVALID: " + kj.reason) << "\n";
  if (opts.print_trace) {
    std::cout << "trace: " << to_string(result.trace) << "\n";
  }
  if (!opts.dot_file.empty()) {
    const Graph graph = lower_to_graph(*result.graph);
    std::ofstream out(opts.dot_file);
    out << graph.to_dot("execution");
    std::cout << "wrote " << opts.dot_file << "\n";
  }
  if (dump.has_value()) {
    std::string flush_error;
    const std::vector<std::string> shards = dump->flush(&flush_error);
    if (!flush_error.empty()) {
      std::cerr << "fdlc: --trace-graph: " << flush_error << "\n";
      return 2;
    }
    std::cout << "wrote trace dump: " << shards.size() << " shards at "
              << dump_base << ".*.json (" << dump->record_count()
              << " records)\n";
  }
  return result.budget_exhausted ? 3 : 0;
}

// --ingest mode: every positional argument is one dump-set glob pattern.
// The per-set report text is fully rendered inside the ingest layer from
// the dump's own stable ids, so output is byte-identical across --jobs.
int run_ingest(const CliOptions& opts) {
  using namespace gtdl;
  ingest::IngestOptions ingest_options;
  ingest_options.jobs = std::max(1u, opts.jobs);
  ingest_options.print_trace = opts.print_trace;
  ingest_options.dot_file = opts.dot_file;
  ingest_options.timeout_ms = opts.timeout_ms;
  ingest_options.budget_steps = opts.budget_steps;
  ingest_options.budget_mb = opts.budget_mb;
  if (opts.program_files.size() == 1) {
    const ingest::IngestReport report =
        ingest_dump_set(opts.program_files.front(), ingest_options);
    std::cout << report.text;
    return report.exit_code;
  }
  const ingest::IngestCorpusReport corpus =
      drive_ingest(opts.program_files, ingest_options);
  for (const ingest::IngestReport& set : corpus.sets) {
    std::cout << "=== " << set.pattern << " ===\n" << set.text;
    if (set.exit_code == 2) {
      std::cerr << "fdlc: malformed dump set '" << set.pattern << "'\n";
    } else if (set.exit_code == 3) {
      std::cerr << "fdlc: gave up on '" << set.pattern << "' ("
                << set.budget.render() << ")\n";
    }
  }
  // No jobs count here (unlike corpus mode): the ingest summary is part
  // of the byte-identical-across---jobs contract.
  std::cout << corpus.sets.size() << " dump sets ingested, worst exit code "
            << corpus.exit_code << "\n";
  return corpus.exit_code;
}

int run_cli(const CliOptions& opts) {
  using namespace gtdl;

  // Observed-graph input: merge runtime trace dumps and judge what the
  // execution actually did (exit codes read "observed", not "proved").
  if (opts.ingest) return run_ingest(opts);

  // Direct graph-type input (the paper's hand-coded-AST path). An Engine
  // carries --jobs parallelism INTO the single analysis (speculative
  // WF/DF overlap, parallel baseline unrolling).
  if (!opts.gtype_text.empty() || !opts.gtype_file.empty()) {
    std::string text = opts.gtype_text;
    if (!opts.gtype_file.empty()) {
      auto contents = read_file(opts.gtype_file);
      if (!contents) return 2;
      text = *contents;
    }
    DiagnosticEngine diags;
    const GTypePtr gtype = parse_gtype(text, diags);
    if (gtype == nullptr) {
      std::cerr << "fdlc: graph type parse error\n" << diags.render();
      return 2;
    }
    Engine engine(opts.jobs);
    std::optional<Budget> budget;
    if (has_budget(opts)) budget.emplace(budget_limits(opts));
    return analyze_gtype(gtype, opts, &engine, budget ? &*budget : nullptr);
  }

  // Corpus mode: several files. They are analyzed over one shared
  // interner with jobs-way parallelism; reports print in input order
  // regardless of which finished first, and files that failed to
  // analyze at all (exit >= 2) are additionally flagged on stderr.
  if (opts.program_files.size() > 1) {
    CorpusOptions corpus_options;
    corpus_options.jobs = opts.jobs;
    corpus_options.new_push = opts.new_push;
    corpus_options.max_iters = opts.max_iters;
    corpus_options.baseline = opts.baseline;
    corpus_options.unrolls = opts.unrolls;
    corpus_options.dump_gtype = opts.dump_gtype;
    corpus_options.timeout_ms = opts.timeout_ms;
    corpus_options.budget_steps = opts.budget_steps;
    corpus_options.budget_mb = opts.budget_mb;
    const CorpusReport corpus =
        drive_corpus(opts.program_files, corpus_options);
    for (const FileReport& file : corpus.files) {
      std::cout << "=== " << file.path << " ===\n";
      std::cout << file.text;
      if (file.exit_code == 2) {
        std::cerr << "fdlc: error analyzing '" << file.path << "': "
                  << file.text;
      } else if (file.exit_code == 3) {
        std::cerr << "fdlc: gave up on '" << file.path << "' ("
                  << file.budget.render() << ")\n";
      }
    }
    std::cout << corpus.files.size() << " files analyzed (" << opts.jobs
              << " jobs), worst exit code " << corpus.exit_code << "\n";
    return corpus.exit_code;
  }

  const std::string& program_file = opts.program_files.front();
  const auto source = read_file(program_file);
  if (!source) return 2;
  DiagnosticEngine diags;
  InferOptions infer_options;
  infer_options.max_signature_iterations = opts.max_iters;
  Engine engine(opts.jobs);
  std::optional<Budget> budget;
  if (has_budget(opts)) budget.emplace(budget_limits(opts));
  Budget* budget_ptr = budget ? &*budget : nullptr;

  // MiniML input, selected by extension (static analysis only).
  const bool is_mml =
      program_file.size() > 4 &&
      program_file.compare(program_file.size() - 4, 4, ".mml") == 0;
  if (is_mml) {
    auto compiled = mml::compile_mml(*source, diags, infer_options);
    if (!compiled) {
      std::cerr << "fdlc: compilation failed\n" << diags.render();
      return 2;
    }
    std::cout << "compiled " << program_file << " (MiniML, "
              << compiled->program.defs.size() << " definitions)\n";
    if (opts.run) {
      std::cerr << "fdlc: --run is not available for MiniML (static "
                   "pipeline only)\n";
    }
    return analyze_gtype(compiled->inferred.program_gtype, opts, &engine,
                         budget_ptr);
  }

  auto compiled = compile_futlang(*source, diags, infer_options);
  if (!compiled) {
    std::cerr << "fdlc: compilation failed\n" << diags.render();
    return 2;
  }
  std::cout << "compiled " << program_file << " ("
            << compiled->program.functions.size() << " functions)\n";
  const int verdict =
      analyze_gtype(compiled->inferred.program_gtype, opts, &engine,
                    budget_ptr);
  if (opts.run) {
    // The watchdog gets its own Budget (inside run_program): execution
    // time should not be charged against the static analysis budget.
    const int run_code = run_program(compiled->program, opts);
    return std::max(verdict, run_code);
  }
  return verdict;
}

// End-of-run observability reports. Must run after every Engine/pool has
// quiesced (run_cli returned), so the rings and counters are stable.
void write_reports(const CliOptions& opts) {
  using gtdl::obs::MetricsRegistry;
  if (opts.stats == StatsMode::kText) {
    std::cerr << MetricsRegistry::instance().render_text();
  } else if (opts.stats == StatsMode::kJson) {
    const std::string json = MetricsRegistry::instance().render_json();
    if (opts.stats_file.empty()) {
      std::cerr << json << "\n";
    } else {
      std::ofstream out(opts.stats_file);
      if (!out) {
        std::cerr << "fdlc: cannot write stats to '" << opts.stats_file
                  << "'\n";
        return;
      }
      out << json << "\n";
      std::cerr << "fdlc: wrote metrics to " << opts.stats_file << "\n";
    }
  }
  if (!opts.trace_file.empty()) {
    std::ofstream out(opts.trace_file);
    if (!out) {
      std::cerr << "fdlc: cannot write trace to '" << opts.trace_file
                << "'\n";
      return;
    }
    gtdl::obs::write_chrome_trace(out);
    std::cerr << "fdlc: wrote trace to " << opts.trace_file << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  // `fdlc ... | head` must not die of SIGPIPE: with the signal ignored a
  // broken pipe surfaces as a failed std::cout write, diagnosed below.
  gtdl::ignore_sigpipe();
  const auto opts = parse_args(argc, argv);
  if (!opts) return 2;
  std::string fault_error;
  if (!gtdl::fault::configure_from_env(&fault_error)) {
    std::cerr << "fdlc: bad GTDL_FAULT: " << fault_error << "\n";
    return 2;
  }
  if (!opts->fault_spec.empty() &&
      !gtdl::fault::configure(opts->fault_spec, &fault_error)) {
    std::cerr << "fdlc: bad --fault: " << fault_error << "\n";
    return 2;
  }
  if (opts->stats != StatsMode::kOff) gtdl::obs::set_stats_enabled(true);
  if (!opts->trace_file.empty()) gtdl::obs::set_trace_enabled(true);
  // Last-resort containment: anything that escapes run_cli (including
  // injected faults outside corpus mode, where there is no per-file
  // guard) becomes a diagnosed exit 2, never a std::terminate. The
  // observability reports still run — a crashing configuration is
  // exactly when the counters matter.
  int exit_code = 2;
  try {
    exit_code = run_cli(*opts);
  } catch (const gtdl::fault::FaultInjected& fault) {
    std::cerr << "fdlc: internal error: injected fault at point '"
              << fault.point << "'\n";
  } catch (const std::exception& e) {
    std::cerr << "fdlc: internal error: " << e.what() << "\n";
  } catch (...) {
    std::cerr << "fdlc: internal error: unknown exception\n";
  }
  write_reports(*opts);
  // Report emission is part of the contract: if any std::cout write was
  // short (EPIPE — the reader went away — or a full disk), the verdict
  // text above is incomplete and must not be trusted, so the exit code
  // says "report failed", never a silent truncated success.
  std::cout.flush();
  if (std::cout.fail()) {
    std::cerr << "fdlc: report truncated (broken pipe or failed write)\n";
    return std::max(exit_code, 2);
  }
  return exit_code;
}
