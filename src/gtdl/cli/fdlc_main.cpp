// fdlc — futures deadlock checker.
//
// The end-to-end driver for the whole pipeline:
//
//   fdlc program.fut                  analyze a FutLang program
//   fdlc program.mml                  analyze a MiniML program (by extension)
//   fdlc --gtype 'new u. 1/u ; ~u'    analyze a graph type directly
//   fdlc --gtype-file type.gt         ... from a file
//   fdlc --jobs 8 a.fut b.mml c.gt    batched corpus mode: analyze every
//                                     file, N-way parallel, over one
//                                     shared interner; reports print in
//                                     input order and the exit code is
//                                     the worst per-file code
//
// Options (the full reference with examples lives in README "CLI
// reference" and docs/OBSERVABILITY.md):
//   --jobs N            analysis parallelism (default 1). With one input
//                       the parallel engine runs inside its analysis;
//                       with several inputs it fans out across files
//   --dump-gtype        print the inferred (and new-pushed) graph types
//   --no-new-push       disable the §5 "new pushing" transformation
//   --max-iters N       Mycroft iteration cap for inference (default 2,
//                       GML-faithful; the §3 m>=2 family needs more)
//   --baseline          also run the (unsound) GML unrolling baseline
//   --unrolls N         baseline per-binding unroll bound (default 2)
//   --run               execute the program; report the dynamic verdict
//                       and judge the trace under Transitive/Known Joins
//   --rand a,b,c        rand() script for --run
//   --seed N            rand() fallback seed for --run
//   --dot FILE          write the executed dependency graph as Graphviz
//   --print-trace       print the executed trace (was --trace before the
//                       observability layer claimed that name)
//   --stats             end-of-run metrics summary on stderr
//   --stats=json        ... as JSON on stderr
//   --stats=json:FILE   ... as JSON into FILE
//   --trace FILE        write a Chrome-trace/Perfetto JSON of the run
//
// Exit code: 0 = analyzed deadlock-free, 1 = possible deadlock reported,
// 2 = usage/compile error.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/mml/driver.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/par/corpus.hpp"
#include "gtdl/par/engine.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/parse.hpp"
#include "gtdl/gtype/wellformed.hpp"
#include "gtdl/tj/join_policy.hpp"

namespace {

enum class StatsMode { kOff, kText, kJson };

struct CliOptions {
  std::vector<std::string> program_files;
  unsigned jobs = 1;
  std::string gtype_text;
  std::string gtype_file;
  bool dump_gtype = false;
  bool new_push = true;
  unsigned max_iters = 2;
  bool baseline = false;
  unsigned unrolls = 2;
  bool run = false;
  std::vector<std::int64_t> rand_script;
  std::uint64_t seed = 1;
  std::string dot_file;
  bool print_trace = false;
  StatsMode stats = StatsMode::kOff;
  std::string stats_file;  // empty = stderr
  std::string trace_file;  // empty = tracing off
};

void usage() {
  std::cerr <<
      "usage: fdlc <program.fut> [<more files>...] [options]\n"
      "       fdlc --gtype '<graph type>' [options]\n"
      "       fdlc --gtype-file <file> [options]\n"
      "options: --jobs N --dump-gtype --no-new-push --max-iters N\n"
      "         --baseline --unrolls N --run --rand a,b,c --seed N\n"
      "         --dot FILE --print-trace --stats[=json[:FILE]]\n"
      "         --trace FILE\n";
}

// Strict numeric parsing: std::stoul would abort fdlc with an uncaught
// exception on `--jobs foo` and silently accept `--jobs 8x`.
bool parse_u64(const std::string& flag, const char* v, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE ||
      std::strchr(v, '-') != nullptr) {
    std::cerr << "fdlc: invalid number '" << v << "' for " << flag << "\n";
    return false;
  }
  out = x;
  return true;
}

bool parse_u32(const std::string& flag, const char* v, unsigned& out) {
  std::uint64_t x = 0;
  if (!parse_u64(flag, v, x) || x > 0xffffffffull) {
    if (x > 0xffffffffull) {
      std::cerr << "fdlc: value '" << v << "' for " << flag
                << " is out of range\n";
    }
    return false;
  }
  out = static_cast<unsigned>(x);
  return true;
}

bool parse_i64(const std::string& flag, const char* v, std::int64_t& out) {
  errno = 0;
  char* end = nullptr;
  const long long x = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) {
    std::cerr << "fdlc: invalid number '" << v << "' for " << flag << "\n";
    return false;
  }
  out = x;
  return true;
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "fdlc: missing value for " << arg << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--dump-gtype") {
      opts.dump_gtype = true;
    } else if (arg == "--no-new-push") {
      opts.new_push = false;
    } else if (arg == "--baseline") {
      opts.baseline = true;
    } else if (arg == "--run") {
      opts.run = true;
    } else if (arg == "--print-trace") {
      opts.print_trace = true;
    } else if (arg == "--stats") {
      opts.stats = StatsMode::kText;
    } else if (arg.rfind("--stats=", 0) == 0) {
      const std::string value = arg.substr(8);
      if (value == "json") {
        opts.stats = StatsMode::kJson;
      } else if (value.rfind("json:", 0) == 0 && value.size() > 5) {
        opts.stats = StatsMode::kJson;
        opts.stats_file = value.substr(5);
      } else {
        std::cerr << "fdlc: bad --stats format '" << value
                  << "' (expected json or json:FILE)\n";
        return std::nullopt;
      }
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.trace_file = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !parse_u32(arg, v, opts.jobs)) return std::nullopt;
      if (opts.jobs == 0) opts.jobs = 1;
    } else if (arg == "--max-iters") {
      const char* v = next();
      if (v == nullptr || !parse_u32(arg, v, opts.max_iters)) {
        return std::nullopt;
      }
    } else if (arg == "--unrolls") {
      const char* v = next();
      if (v == nullptr || !parse_u32(arg, v, opts.unrolls)) {
        return std::nullopt;
      }
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !parse_u64(arg, v, opts.seed)) return std::nullopt;
    } else if (arg == "--rand") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      std::stringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ',')) {
        std::int64_t x = 0;
        if (!parse_i64(arg, item.c_str(), x)) return std::nullopt;
        opts.rand_script.push_back(x);
      }
    } else if (arg == "--dot") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.dot_file = v;
    } else if (arg == "--gtype") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.gtype_text = v;
    } else if (arg == "--gtype-file") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.gtype_file = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fdlc: unknown option " << arg << "\n";
      return std::nullopt;
    } else {
      opts.program_files.push_back(arg);
    }
  }
  const int inputs = (!opts.program_files.empty() ? 1 : 0) +
                     (!opts.gtype_text.empty() ? 1 : 0) +
                     (!opts.gtype_file.empty() ? 1 : 0);
  if (inputs != 1) {
    usage();
    return std::nullopt;
  }
  if (opts.run && opts.program_files.size() != 1) {
    std::cerr << "fdlc: --run requires exactly one FutLang program (no "
                 "corpus mode)\n";
    return std::nullopt;
  }
  return opts;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fdlc: cannot open '" << path << "'\n";
    return std::nullopt;
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int analyze_gtype(const gtdl::GTypePtr& gtype, const CliOptions& opts,
                  gtdl::Engine* engine) {
  using namespace gtdl;
  if (opts.dump_gtype) {
    std::cout << "graph type: " << to_string(gtype) << "\n";
  }
  const WellformedResult wf = check_wellformed(gtype);
  if (!wf.ok) {
    std::cout << "well-formedness: REJECTED\n" << wf.diags.render();
    return 1;
  }
  std::cout << "well-formedness: ok (kind " << to_string(wf.kind) << ")\n";

  DetectOptions detect;
  detect.new_pushing = opts.new_push;
  detect.engine = engine;
  const DeadlockVerdict verdict = check_deadlock_freedom(gtype, detect);
  if (opts.dump_gtype && opts.new_push) {
    std::cout << "after new pushing: " << to_string(verdict.analyzed)
              << "\n";
  }
  if (verdict.deadlock_free) {
    std::cout << "deadlock analysis: DEADLOCK-FREE (accepted)\n";
  } else {
    std::cout << "deadlock analysis: POSSIBLE DEADLOCK (rejected)\n"
              << verdict.diags.render();
  }

  if (opts.baseline) {
    GmlBaselineOptions baseline_options;
    baseline_options.unrolls_per_binding = opts.unrolls;
    baseline_options.engine = engine;
    const GmlBaselineReport report =
        gml_baseline_check(gtype, baseline_options);
    std::cout << "gml baseline (" << report.unrolls_per_binding
              << " unrolls/binding, " << report.graphs_checked
              << " graphs" << (report.truncated ? ", TRUNCATED" : "")
              << "): "
              << (report.deadlock_reported ? "reports deadlock"
                                           : "reports deadlock-free")
              << "\n";
    if (report.deadlock_reported) {
      std::cout << "  witness: " << report.witness << "\n";
    }
  }
  return verdict.deadlock_free ? 0 : 1;
}

int run_program(const gtdl::Program& program, const CliOptions& opts) {
  using namespace gtdl;
  gtdl::obs::Span span("cli", "run_program");
  InterpOptions interp_options;
  interp_options.rand_script = opts.rand_script;
  interp_options.seed = opts.seed;
  const InterpResult result = interpret(program, interp_options);
  if (!result.output.empty()) {
    std::cout << "--- program output ---\n" << result.output
              << "----------------------\n";
  }
  if (result.error.has_value()) {
    std::cout << "execution: runtime error: " << *result.error << "\n";
  } else if (result.deadlock.has_value()) {
    std::cout << "execution: DEADLOCKED: " << *result.deadlock << "\n";
  } else {
    std::cout << "execution: completed (" << result.steps << " steps)\n";
  }
  const GroundDeadlock ground = result.graph_deadlock();
  std::cout << "executed graph: "
            << (ground.any() ? "contains a deadlock" : "deadlock-free")
            << " (" << node_count(*result.graph) << " nodes)\n";
  const TraceVerdict tj = check_transitive_joins(result.trace);
  const TraceVerdict kj = check_known_joins(result.trace);
  std::cout << "transitive joins: "
            << (tj.valid ? "valid" : "INVALID: " + tj.reason) << "\n";
  std::cout << "known joins: "
            << (kj.valid ? "valid" : "INVALID: " + kj.reason) << "\n";
  if (opts.print_trace) {
    std::cout << "trace: " << to_string(result.trace) << "\n";
  }
  if (!opts.dot_file.empty()) {
    const Graph graph = lower_to_graph(*result.graph);
    std::ofstream out(opts.dot_file);
    out << graph.to_dot("execution");
    std::cout << "wrote " << opts.dot_file << "\n";
  }
  return 0;
}

int run_cli(const CliOptions& opts) {
  using namespace gtdl;

  // Direct graph-type input (the paper's hand-coded-AST path). An Engine
  // carries --jobs parallelism INTO the single analysis (speculative
  // WF/DF overlap, parallel baseline unrolling).
  if (!opts.gtype_text.empty() || !opts.gtype_file.empty()) {
    std::string text = opts.gtype_text;
    if (!opts.gtype_file.empty()) {
      auto contents = read_file(opts.gtype_file);
      if (!contents) return 2;
      text = *contents;
    }
    DiagnosticEngine diags;
    const GTypePtr gtype = parse_gtype(text, diags);
    if (gtype == nullptr) {
      std::cerr << "fdlc: graph type parse error\n" << diags.render();
      return 2;
    }
    Engine engine(opts.jobs);
    return analyze_gtype(gtype, opts, &engine);
  }

  // Corpus mode: several files. They are analyzed over one shared
  // interner with jobs-way parallelism; reports print in input order
  // regardless of which finished first, and files that failed to
  // analyze at all (exit >= 2) are additionally flagged on stderr.
  if (opts.program_files.size() > 1) {
    CorpusOptions corpus_options;
    corpus_options.jobs = opts.jobs;
    corpus_options.new_push = opts.new_push;
    corpus_options.max_iters = opts.max_iters;
    corpus_options.baseline = opts.baseline;
    corpus_options.unrolls = opts.unrolls;
    corpus_options.dump_gtype = opts.dump_gtype;
    const CorpusReport corpus =
        drive_corpus(opts.program_files, corpus_options);
    for (const FileReport& file : corpus.files) {
      std::cout << "=== " << file.path << " ===\n";
      std::cout << file.text;
      if (file.exit_code >= 2) {
        std::cerr << "fdlc: error analyzing '" << file.path << "': "
                  << file.text;
      }
    }
    std::cout << corpus.files.size() << " files analyzed (" << opts.jobs
              << " jobs), worst exit code " << corpus.exit_code << "\n";
    return corpus.exit_code;
  }

  const std::string& program_file = opts.program_files.front();
  const auto source = read_file(program_file);
  if (!source) return 2;
  DiagnosticEngine diags;
  InferOptions infer_options;
  infer_options.max_signature_iterations = opts.max_iters;
  Engine engine(opts.jobs);

  // MiniML input, selected by extension (static analysis only).
  const bool is_mml =
      program_file.size() > 4 &&
      program_file.compare(program_file.size() - 4, 4, ".mml") == 0;
  if (is_mml) {
    auto compiled = mml::compile_mml(*source, diags, infer_options);
    if (!compiled) {
      std::cerr << "fdlc: compilation failed\n" << diags.render();
      return 2;
    }
    std::cout << "compiled " << program_file << " (MiniML, "
              << compiled->program.defs.size() << " definitions)\n";
    if (opts.run) {
      std::cerr << "fdlc: --run is not available for MiniML (static "
                   "pipeline only)\n";
    }
    return analyze_gtype(compiled->inferred.program_gtype, opts, &engine);
  }

  auto compiled = compile_futlang(*source, diags, infer_options);
  if (!compiled) {
    std::cerr << "fdlc: compilation failed\n" << diags.render();
    return 2;
  }
  std::cout << "compiled " << program_file << " ("
            << compiled->program.functions.size() << " functions)\n";
  const int verdict =
      analyze_gtype(compiled->inferred.program_gtype, opts, &engine);
  if (opts.run) (void)run_program(compiled->program, opts);
  return verdict;
}

// End-of-run observability reports. Must run after every Engine/pool has
// quiesced (run_cli returned), so the rings and counters are stable.
void write_reports(const CliOptions& opts) {
  using gtdl::obs::MetricsRegistry;
  if (opts.stats == StatsMode::kText) {
    std::cerr << MetricsRegistry::instance().render_text();
  } else if (opts.stats == StatsMode::kJson) {
    const std::string json = MetricsRegistry::instance().render_json();
    if (opts.stats_file.empty()) {
      std::cerr << json << "\n";
    } else {
      std::ofstream out(opts.stats_file);
      if (!out) {
        std::cerr << "fdlc: cannot write stats to '" << opts.stats_file
                  << "'\n";
        return;
      }
      out << json << "\n";
      std::cerr << "fdlc: wrote metrics to " << opts.stats_file << "\n";
    }
  }
  if (!opts.trace_file.empty()) {
    std::ofstream out(opts.trace_file);
    if (!out) {
      std::cerr << "fdlc: cannot write trace to '" << opts.trace_file
                << "'\n";
      return;
    }
    gtdl::obs::write_chrome_trace(out);
    std::cerr << "fdlc: wrote trace to " << opts.trace_file << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_args(argc, argv);
  if (!opts) return 2;
  if (opts->stats != StatsMode::kOff) gtdl::obs::set_stats_enabled(true);
  if (!opts->trace_file.empty()) gtdl::obs::set_trace_enabled(true);
  const int exit_code = run_cli(*opts);
  write_reports(*opts);
  return exit_code;
}
