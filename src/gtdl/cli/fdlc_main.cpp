// fdlc — futures deadlock checker.
//
// The end-to-end driver for the whole pipeline:
//
//   fdlc program.fut                  analyze a FutLang program
//   fdlc program.mml                  analyze a MiniML program (by extension)
//   fdlc --gtype 'new u. 1/u ; ~u'    analyze a graph type directly
//   fdlc --gtype-file type.gt         ... from a file
//   fdlc --jobs 8 a.fut b.mml c.gt    batched corpus mode: analyze every
//                                     file, N-way parallel, over one
//                                     shared interner; reports print in
//                                     input order and the exit code is
//                                     the worst per-file code
//
// Options:
//   --jobs N            analysis parallelism (default 1); N > 1 or more
//                       than one input file selects corpus mode
//   --dump-gtype        print the inferred (and new-pushed) graph types
//   --no-new-push       disable the §5 "new pushing" transformation
//   --max-iters N       Mycroft iteration cap for inference (default 2,
//                       GML-faithful; the §3 m>=2 family needs more)
//   --baseline          also run the (unsound) GML unrolling baseline
//   --unrolls N         baseline per-binding unroll bound (default 2)
//   --run               execute the program; report the dynamic verdict
//                       and judge the trace under Transitive/Known Joins
//   --rand a,b,c        rand() script for --run
//   --seed N            rand() fallback seed for --run
//   --dot FILE          write the executed dependency graph as Graphviz
//   --trace             print the executed trace
//
// Exit code: 0 = analyzed deadlock-free, 1 = possible deadlock reported,
// 2 = usage/compile error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/mml/driver.hpp"
#include "gtdl/par/corpus.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/parse.hpp"
#include "gtdl/gtype/wellformed.hpp"
#include "gtdl/tj/join_policy.hpp"

namespace {

struct CliOptions {
  std::vector<std::string> program_files;
  unsigned jobs = 1;
  std::string gtype_text;
  std::string gtype_file;
  bool dump_gtype = false;
  bool new_push = true;
  unsigned max_iters = 2;
  bool baseline = false;
  unsigned unrolls = 2;
  bool run = false;
  std::vector<std::int64_t> rand_script;
  std::uint64_t seed = 1;
  std::string dot_file;
  bool print_trace = false;
};

void usage() {
  std::cerr <<
      "usage: fdlc <program.fut> [<more files>...] [options]\n"
      "       fdlc --gtype '<graph type>' [options]\n"
      "       fdlc --gtype-file <file> [options]\n"
      "options: --jobs N --dump-gtype --no-new-push --max-iters N\n"
      "         --baseline --unrolls N --run --rand a,b,c --seed N\n"
      "         --dot FILE --trace\n";
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "fdlc: missing value for " << arg << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--dump-gtype") {
      opts.dump_gtype = true;
    } else if (arg == "--no-new-push") {
      opts.new_push = false;
    } else if (arg == "--baseline") {
      opts.baseline = true;
    } else if (arg == "--run") {
      opts.run = true;
    } else if (arg == "--trace") {
      opts.print_trace = true;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.jobs = static_cast<unsigned>(std::stoul(v));
      if (opts.jobs == 0) opts.jobs = 1;
    } else if (arg == "--max-iters") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.max_iters = static_cast<unsigned>(std::stoul(v));
    } else if (arg == "--unrolls") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.unrolls = static_cast<unsigned>(std::stoul(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.seed = std::stoull(v);
    } else if (arg == "--rand") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      std::stringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ',')) {
        opts.rand_script.push_back(std::stoll(item));
      }
    } else if (arg == "--dot") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.dot_file = v;
    } else if (arg == "--gtype") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.gtype_text = v;
    } else if (arg == "--gtype-file") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opts.gtype_file = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fdlc: unknown option " << arg << "\n";
      return std::nullopt;
    } else {
      opts.program_files.push_back(arg);
    }
  }
  const int inputs = (!opts.program_files.empty() ? 1 : 0) +
                     (!opts.gtype_text.empty() ? 1 : 0) +
                     (!opts.gtype_file.empty() ? 1 : 0);
  if (inputs != 1) {
    usage();
    return std::nullopt;
  }
  if (opts.run &&
      (opts.program_files.size() != 1 || opts.jobs > 1)) {
    std::cerr << "fdlc: --run requires exactly one FutLang program (no "
                 "corpus mode)\n";
    return std::nullopt;
  }
  return opts;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fdlc: cannot open '" << path << "'\n";
    return std::nullopt;
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int analyze_gtype(const gtdl::GTypePtr& gtype, const CliOptions& opts) {
  using namespace gtdl;
  if (opts.dump_gtype) {
    std::cout << "graph type: " << to_string(gtype) << "\n";
  }
  const WellformedResult wf = check_wellformed(gtype);
  if (!wf.ok) {
    std::cout << "well-formedness: REJECTED\n" << wf.diags.render();
    return 1;
  }
  std::cout << "well-formedness: ok (kind " << to_string(wf.kind) << ")\n";

  DetectOptions detect;
  detect.new_pushing = opts.new_push;
  const DeadlockVerdict verdict = check_deadlock_freedom(gtype, detect);
  if (opts.dump_gtype && opts.new_push) {
    std::cout << "after new pushing: " << to_string(verdict.analyzed)
              << "\n";
  }
  if (verdict.deadlock_free) {
    std::cout << "deadlock analysis: DEADLOCK-FREE (accepted)\n";
  } else {
    std::cout << "deadlock analysis: POSSIBLE DEADLOCK (rejected)\n"
              << verdict.diags.render();
  }

  if (opts.baseline) {
    GmlBaselineOptions baseline_options;
    baseline_options.unrolls_per_binding = opts.unrolls;
    const GmlBaselineReport report =
        gml_baseline_check(gtype, baseline_options);
    std::cout << "gml baseline (" << report.unrolls_per_binding
              << " unrolls/binding, " << report.graphs_checked
              << " graphs" << (report.truncated ? ", TRUNCATED" : "")
              << "): "
              << (report.deadlock_reported ? "reports deadlock"
                                           : "reports deadlock-free")
              << "\n";
    if (report.deadlock_reported) {
      std::cout << "  witness: " << report.witness << "\n";
    }
  }
  return verdict.deadlock_free ? 0 : 1;
}

int run_program(const gtdl::Program& program, const CliOptions& opts) {
  using namespace gtdl;
  InterpOptions interp_options;
  interp_options.rand_script = opts.rand_script;
  interp_options.seed = opts.seed;
  const InterpResult result = interpret(program, interp_options);
  if (!result.output.empty()) {
    std::cout << "--- program output ---\n" << result.output
              << "----------------------\n";
  }
  if (result.error.has_value()) {
    std::cout << "execution: runtime error: " << *result.error << "\n";
  } else if (result.deadlock.has_value()) {
    std::cout << "execution: DEADLOCKED: " << *result.deadlock << "\n";
  } else {
    std::cout << "execution: completed (" << result.steps << " steps)\n";
  }
  const GroundDeadlock ground = result.graph_deadlock();
  std::cout << "executed graph: "
            << (ground.any() ? "contains a deadlock" : "deadlock-free")
            << " (" << node_count(*result.graph) << " nodes)\n";
  const TraceVerdict tj = check_transitive_joins(result.trace);
  const TraceVerdict kj = check_known_joins(result.trace);
  std::cout << "transitive joins: "
            << (tj.valid ? "valid" : "INVALID: " + tj.reason) << "\n";
  std::cout << "known joins: "
            << (kj.valid ? "valid" : "INVALID: " + kj.reason) << "\n";
  if (opts.print_trace) {
    std::cout << "trace: " << to_string(result.trace) << "\n";
  }
  if (!opts.dot_file.empty()) {
    const Graph graph = lower_to_graph(*result.graph);
    std::ofstream out(opts.dot_file);
    out << graph.to_dot("execution");
    std::cout << "wrote " << opts.dot_file << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gtdl;
  const auto opts = parse_args(argc, argv);
  if (!opts) return 2;

  // Direct graph-type input (the paper's hand-coded-AST path).
  if (!opts->gtype_text.empty() || !opts->gtype_file.empty()) {
    std::string text = opts->gtype_text;
    if (!opts->gtype_file.empty()) {
      auto contents = read_file(opts->gtype_file);
      if (!contents) return 2;
      text = *contents;
    }
    DiagnosticEngine diags;
    const GTypePtr gtype = parse_gtype(text, diags);
    if (gtype == nullptr) {
      std::cerr << "fdlc: graph type parse error\n" << diags.render();
      return 2;
    }
    return analyze_gtype(gtype, *opts);
  }

  // Corpus mode: several files and/or --jobs. Files are analyzed over
  // one shared interner with jobs-way parallelism; reports print in
  // input order regardless of which finished first.
  if (opts->program_files.size() > 1 || opts->jobs > 1) {
    CorpusOptions corpus_options;
    corpus_options.jobs = opts->jobs;
    corpus_options.new_push = opts->new_push;
    corpus_options.max_iters = opts->max_iters;
    corpus_options.baseline = opts->baseline;
    corpus_options.unrolls = opts->unrolls;
    corpus_options.dump_gtype = opts->dump_gtype;
    const CorpusReport corpus =
        drive_corpus(opts->program_files, corpus_options);
    for (const FileReport& file : corpus.files) {
      if (corpus.files.size() > 1) {
        std::cout << "=== " << file.path << " ===\n";
      }
      std::cout << file.text;
    }
    if (corpus.files.size() > 1) {
      std::cout << corpus.files.size() << " files analyzed ("
                << opts->jobs << " jobs), worst exit code "
                << corpus.exit_code << "\n";
    }
    return corpus.exit_code;
  }

  const std::string& program_file = opts->program_files.front();
  const auto source = read_file(program_file);
  if (!source) return 2;
  DiagnosticEngine diags;
  InferOptions infer_options;
  infer_options.max_signature_iterations = opts->max_iters;

  // MiniML input, selected by extension (static analysis only).
  const bool is_mml =
      program_file.size() > 4 &&
      program_file.compare(program_file.size() - 4, 4, ".mml") == 0;
  if (is_mml) {
    auto compiled = mml::compile_mml(*source, diags, infer_options);
    if (!compiled) {
      std::cerr << "fdlc: compilation failed\n" << diags.render();
      return 2;
    }
    std::cout << "compiled " << program_file << " (MiniML, "
              << compiled->program.defs.size() << " definitions)\n";
    if (opts->run) {
      std::cerr << "fdlc: --run is not available for MiniML (static "
                   "pipeline only)\n";
    }
    return analyze_gtype(compiled->inferred.program_gtype, *opts);
  }

  auto compiled = compile_futlang(*source, diags, infer_options);
  if (!compiled) {
    std::cerr << "fdlc: compilation failed\n" << diags.render();
    return 2;
  }
  std::cout << "compiled " << program_file << " ("
            << compiled->program.functions.size() << " functions)\n";
  const int verdict = analyze_gtype(compiled->inferred.program_gtype, *opts);
  if (opts->run) (void)run_program(compiled->program, *opts);
  return verdict;
}
