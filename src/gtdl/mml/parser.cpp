#include "gtdl/mml/parser.hpp"

#include <cctype>
#include <stdexcept>
#include <unordered_map>

namespace gtdl::mml {

namespace {

enum class Tok : unsigned char {
  kIdent, kInt, kString,
  kLet, kRec, kIn, kIf, kThen, kElse, kMatch, kWith,
  kSpawn, kTouch, kNewfut, kTrue, kFalse, kNot, kMod,
  kTyInt, kTyBool, kTyUnit, kTyString, kTyList, kTyFuture,
  kLParen, kRParen, kColon, kSemi, kEquals, kArrow, kBar,
  kPlus, kMinus, kStar, kSlash, kCaret,
  kNe, kLt, kLe, kGt, kGe, kAndAnd, kOrOr, kColonColon, kNilLit,
  kEnd, kError,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string_view text;
  SrcLoc loc;
  std::int64_t int_value = 0;
  std::string string_value;
};

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> table{
      {"let", Tok::kLet},       {"rec", Tok::kRec},
      {"in", Tok::kIn},         {"if", Tok::kIf},
      {"then", Tok::kThen},     {"else", Tok::kElse},
      {"match", Tok::kMatch},   {"with", Tok::kWith},
      {"spawn", Tok::kSpawn},   {"touch", Tok::kTouch},
      {"newfut", Tok::kNewfut}, {"true", Tok::kTrue},
      {"false", Tok::kFalse},   {"not", Tok::kNot},
      {"mod", Tok::kMod},       {"int", Tok::kTyInt},
      {"bool", Tok::kTyBool},   {"unit", Tok::kTyUnit},
      {"string", Tok::kTyString}, {"list", Tok::kTyList},
      {"future", Tok::kTyFuture},
  };
  return table;
}

class Lexer {
 public:
  Lexer(std::string_view text, DiagnosticEngine& diags)
      : text_(text), diags_(diags) {}

  Token next() {
    skip_trivia();
    const SrcLoc loc{line_, column_};
    if (pos_ >= text_.size()) return {Tok::kEnd, {}, loc, 0, {}};
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = pos_;
      while (end < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[end]))) {
        ++end;
      }
      Token tok{Tok::kInt, text_.substr(pos_, end - pos_), loc, 0, {}};
      tok.int_value = std::stoll(std::string(tok.text));
      advance(end - pos_);
      return tok;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '_' || text_[end] == '\'')) {
        ++end;
      }
      const std::string_view word = text_.substr(pos_, end - pos_);
      advance(end - pos_);
      auto it = keywords().find(word);
      return {it == keywords().end() ? Tok::kIdent : it->second, word, loc,
              0, {}};
    }
    if (c == '"') return lex_string(loc);
    return lex_punct(loc);
  }

 private:
  Token lex_string(SrcLoc loc) {
    advance(1);
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        advance(1);
        switch (text_[pos_]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          default:
            diags_.error(SrcLoc{line_, column_}, "unknown escape");
            c = text_[pos_];
        }
      }
      value += c;
      advance(1);
    }
    if (pos_ >= text_.size()) {
      diags_.error(loc, "unterminated string literal");
      return {Tok::kError, {}, loc, 0, {}};
    }
    advance(1);
    Token tok{Tok::kString, {}, loc, 0, std::move(value)};
    return tok;
  }

  Token lex_punct(SrcLoc loc) {
    const auto two = text_.substr(pos_, 2);
    struct Pair {
      std::string_view spelling;
      Tok kind;
    };
    static constexpr Pair kTwo[] = {
        {"->", Tok::kArrow},   {"<>", Tok::kNe},  {"<=", Tok::kLe},
        {">=", Tok::kGe},      {"&&", Tok::kAndAnd}, {"||", Tok::kOrOr},
        {"::", Tok::kColonColon}, {"[]", Tok::kNilLit},
    };
    for (const Pair& p : kTwo) {
      if (two == p.spelling) {
        Token tok{p.kind, two, loc, 0, {}};
        advance(2);
        return tok;
      }
    }
    Tok kind = Tok::kError;
    switch (text_[pos_]) {
      case '(': kind = Tok::kLParen; break;
      case ')': kind = Tok::kRParen; break;
      case ':': kind = Tok::kColon; break;
      case ';': kind = Tok::kSemi; break;
      case '=': kind = Tok::kEquals; break;
      case '|': kind = Tok::kBar; break;
      case '+': kind = Tok::kPlus; break;
      case '-': kind = Tok::kMinus; break;
      case '*': kind = Tok::kStar; break;
      case '/': kind = Tok::kSlash; break;
      case '^': kind = Tok::kCaret; break;
      case '<': kind = Tok::kLt; break;
      case '>': kind = Tok::kGt; break;
      default:
        diags_.error(loc, std::string("unexpected character '") +
                              text_[pos_] + "'");
        break;
    }
    Token tok{kind, text_.substr(pos_, 1), loc, 0, {}};
    advance(1);
    return tok;
  }

  void advance(std::size_t n) {
    for (std::size_t i = 0; i < n && pos_ < text_.size(); ++i, ++pos_) {
      if (text_[pos_] == '\n') {
        ++line_;
        column_ = 1;
      } else {
        ++column_;
      }
    }
  }

  void skip_trivia() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        advance(1);
      }
      // (* nested comments *)
      if (pos_ + 1 < text_.size() && text_[pos_] == '(' &&
          text_[pos_ + 1] == '*') {
        int depth = 0;
        while (pos_ < text_.size()) {
          if (pos_ + 1 < text_.size() && text_[pos_] == '(' &&
              text_[pos_ + 1] == '*') {
            ++depth;
            advance(2);
          } else if (pos_ + 1 < text_.size() && text_[pos_] == '*' &&
                     text_[pos_ + 1] == ')') {
            --depth;
            advance(2);
            if (depth == 0) break;
          } else {
            advance(1);
          }
        }
        continue;
      }
      break;
    }
  }

  std::string_view text_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

class Parser {
 public:
  Parser(std::string_view text, DiagnosticEngine& diags)
      : lexer_(text, diags), diags_(diags) {
    advance();
  }

  std::optional<MProgram> parse() {
    MProgram program;
    while (!at(Tok::kEnd)) {
      auto def = parse_def();
      if (!def) return std::nullopt;
      program.defs.push_back(std::move(*def));
    }
    return program;
  }

 private:
  void advance() { current_ = lexer_.next(); }
  [[nodiscard]] bool at(Tok kind) const { return current_.kind == kind; }

  bool accept(Tok kind) {
    if (!at(kind)) return false;
    advance();
    return true;
  }

  bool expect(Tok kind, const char* what) {
    if (accept(kind)) return true;
    error(std::string("expected ") + what);
    return false;
  }

  void error(std::string message) {
    diags_.error(current_.loc,
                 message + " (found '" +
                     (at(Tok::kEnd) ? std::string("<end>")
                                    : std::string(current_.text)) +
                     "')");
  }

  std::optional<Symbol> parse_ident(const char* what) {
    if (!at(Tok::kIdent)) {
      error(std::string("expected ") + what);
      return std::nullopt;
    }
    const Symbol s = Symbol::intern(current_.text);
    advance();
    return s;
  }

  // --- types: base ('future' | 'list')* ---
  TypePtr parse_type() {
    TypePtr base;
    switch (current_.kind) {
      case Tok::kTyInt: base = ty::intt(); advance(); break;
      case Tok::kTyBool: base = ty::boolt(); advance(); break;
      case Tok::kTyUnit: base = ty::unit(); advance(); break;
      case Tok::kTyString: base = ty::string(); advance(); break;
      case Tok::kLParen: {
        advance();
        base = parse_type();
        if (base == nullptr) return nullptr;
        if (!expect(Tok::kRParen, "')'")) return nullptr;
        break;
      }
      default:
        error("expected a type");
        return nullptr;
    }
    for (;;) {
      if (accept(Tok::kTyFuture)) {
        base = ty::future(std::move(base));
      } else if (accept(Tok::kTyList)) {
        base = ty::list(std::move(base));
      } else {
        return base;
      }
    }
  }

  std::optional<MDef> parse_def() {
    const SrcLoc loc = current_.loc;
    if (!expect(Tok::kLet, "'let'")) return std::nullopt;
    MDef def;
    def.loc = loc;
    def.recursive = accept(Tok::kRec);
    auto name = parse_ident("definition name");
    if (!name) return std::nullopt;
    def.name = *name;
    while (at(Tok::kLParen)) {
      advance();
      if (accept(Tok::kRParen)) continue;  // unit parameter: ()
      const SrcLoc ploc = current_.loc;
      auto pname = parse_ident("parameter name");
      if (!pname) return std::nullopt;
      if (!expect(Tok::kColon, "':' in parameter")) return std::nullopt;
      TypePtr ptype = parse_type();
      if (ptype == nullptr) return std::nullopt;
      if (!expect(Tok::kRParen, "')'")) return std::nullopt;
      def.params.push_back(MParam{*pname, std::move(ptype), ploc});
    }
    if (!expect(Tok::kColon, "':' before return type")) return std::nullopt;
    def.return_type = parse_type();
    if (def.return_type == nullptr) return std::nullopt;
    if (!expect(Tok::kEquals, "'='")) return std::nullopt;
    def.body = parse_expr();
    if (def.body == nullptr) return std::nullopt;
    return def;
  }

  // --- expressions ---

  MExprPtr parse_expr() {
    const SrcLoc loc = current_.loc;
    if (at(Tok::kLet)) return parse_let();
    if (accept(Tok::kIf)) {
      MExprPtr cond = parse_expr();
      if (cond == nullptr) return nullptr;
      if (!expect(Tok::kThen, "'then'")) return nullptr;
      MExprPtr then_branch = parse_expr();
      if (then_branch == nullptr) return nullptr;
      if (!expect(Tok::kElse, "'else'")) return nullptr;
      MExprPtr else_branch = parse_expr();
      if (else_branch == nullptr) return nullptr;
      return make(MIf{std::move(cond), std::move(then_branch),
                      std::move(else_branch)},
                  loc);
    }
    if (accept(Tok::kMatch)) return parse_match(loc);
    return parse_seq();
  }

  MExprPtr parse_let() {
    const SrcLoc loc = current_.loc;
    advance();  // 'let'
    if (at(Tok::kRec)) {
      error("nested 'let rec' is not supported; define it at top level");
      return nullptr;
    }
    std::optional<Symbol> name;
    TypePtr annotation;
    if (accept(Tok::kLParen)) {
      if (!expect(Tok::kRParen, "')' in 'let ()'")) return nullptr;
    } else {
      name = parse_ident("binder");
      if (!name) return nullptr;
      if (accept(Tok::kColon)) {
        annotation = parse_type();
        if (annotation == nullptr) return nullptr;
      }
    }
    if (!expect(Tok::kEquals, "'='")) return nullptr;
    MExprPtr bound = parse_expr();
    if (bound == nullptr) return nullptr;
    if (!expect(Tok::kIn, "'in'")) return nullptr;
    MExprPtr body = parse_expr();
    if (body == nullptr) return nullptr;
    return make(MLet{name, std::move(annotation), std::move(bound),
                     std::move(body)},
                loc);
  }

  MExprPtr parse_match(SrcLoc loc) {
    MExprPtr scrutinee = parse_expr();
    if (scrutinee == nullptr) return nullptr;
    if (!expect(Tok::kWith, "'with'")) return nullptr;
    accept(Tok::kBar);  // optional leading '|'
    if (!expect(Tok::kNilLit, "'[]' pattern")) return nullptr;
    if (!expect(Tok::kArrow, "'->'")) return nullptr;
    MExprPtr nil_case = parse_expr();
    if (nil_case == nullptr) return nullptr;
    if (!expect(Tok::kBar, "'|' before cons pattern")) return nullptr;
    auto head = parse_ident("head binder");
    if (!head) return nullptr;
    if (!expect(Tok::kColonColon, "'::' in pattern")) return nullptr;
    auto tail = parse_ident("tail binder");
    if (!tail) return nullptr;
    if (!expect(Tok::kArrow, "'->'")) return nullptr;
    MExprPtr cons_case = parse_expr();
    if (cons_case == nullptr) return nullptr;
    return make(MMatch{std::move(scrutinee), std::move(nil_case), *head,
                       *tail, std::move(cons_case)},
                loc);
  }

  MExprPtr parse_seq() {
    MExprPtr first = parse_or();
    if (first == nullptr) return nullptr;
    if (at(Tok::kSemi)) {
      const SrcLoc loc = current_.loc;
      advance();
      MExprPtr second = parse_expr();  // right associative, low precedence
      if (second == nullptr) return nullptr;
      return make(MSeq{std::move(first), std::move(second)}, loc);
    }
    return first;
  }

  MExprPtr parse_or() {
    MExprPtr lhs = parse_and();
    while (lhs != nullptr && at(Tok::kOrOr)) {
      const SrcLoc loc = current_.loc;
      advance();
      MExprPtr rhs = parse_and();
      if (rhs == nullptr) return nullptr;
      lhs = make(MBin{MBinOp::kOr, std::move(lhs), std::move(rhs)}, loc);
    }
    return lhs;
  }

  MExprPtr parse_and() {
    MExprPtr lhs = parse_cmp();
    while (lhs != nullptr && at(Tok::kAndAnd)) {
      const SrcLoc loc = current_.loc;
      advance();
      MExprPtr rhs = parse_cmp();
      if (rhs == nullptr) return nullptr;
      lhs = make(MBin{MBinOp::kAnd, std::move(lhs), std::move(rhs)}, loc);
    }
    return lhs;
  }

  MExprPtr parse_cmp() {
    MExprPtr lhs = parse_cons();
    if (lhs == nullptr) return nullptr;
    MBinOp op;
    switch (current_.kind) {
      case Tok::kEquals: op = MBinOp::kEq; break;
      case Tok::kNe: op = MBinOp::kNe; break;
      case Tok::kLt: op = MBinOp::kLt; break;
      case Tok::kLe: op = MBinOp::kLe; break;
      case Tok::kGt: op = MBinOp::kGt; break;
      case Tok::kGe: op = MBinOp::kGe; break;
      default:
        return lhs;
    }
    const SrcLoc loc = current_.loc;
    advance();
    MExprPtr rhs = parse_cons();
    if (rhs == nullptr) return nullptr;
    return make(MBin{op, std::move(lhs), std::move(rhs)}, loc);
  }

  MExprPtr parse_cons() {
    MExprPtr lhs = parse_concat();
    if (lhs == nullptr) return nullptr;
    if (at(Tok::kColonColon)) {
      const SrcLoc loc = current_.loc;
      advance();
      MExprPtr rhs = parse_cons();  // right associative
      if (rhs == nullptr) return nullptr;
      return make(MCons{std::move(lhs), std::move(rhs)}, loc);
    }
    return lhs;
  }

  MExprPtr parse_concat() {
    MExprPtr lhs = parse_add();
    while (lhs != nullptr && at(Tok::kCaret)) {
      const SrcLoc loc = current_.loc;
      advance();
      MExprPtr rhs = parse_add();
      if (rhs == nullptr) return nullptr;
      lhs = make(MBin{MBinOp::kConcat, std::move(lhs), std::move(rhs)}, loc);
    }
    return lhs;
  }

  MExprPtr parse_add() {
    MExprPtr lhs = parse_mul();
    while (lhs != nullptr && (at(Tok::kPlus) || at(Tok::kMinus))) {
      const MBinOp op = at(Tok::kPlus) ? MBinOp::kAdd : MBinOp::kSub;
      const SrcLoc loc = current_.loc;
      advance();
      MExprPtr rhs = parse_mul();
      if (rhs == nullptr) return nullptr;
      lhs = make(MBin{op, std::move(lhs), std::move(rhs)}, loc);
    }
    return lhs;
  }

  MExprPtr parse_mul() {
    MExprPtr lhs = parse_unary();
    while (lhs != nullptr &&
           (at(Tok::kStar) || at(Tok::kSlash) || at(Tok::kMod))) {
      MBinOp op = MBinOp::kMul;
      if (at(Tok::kSlash)) op = MBinOp::kDiv;
      if (at(Tok::kMod)) op = MBinOp::kMod;
      const SrcLoc loc = current_.loc;
      advance();
      MExprPtr rhs = parse_unary();
      if (rhs == nullptr) return nullptr;
      lhs = make(MBin{op, std::move(lhs), std::move(rhs)}, loc);
    }
    return lhs;
  }

  MExprPtr parse_unary() {
    const SrcLoc loc = current_.loc;
    if (accept(Tok::kMinus)) {
      MExprPtr operand = parse_unary();
      if (operand == nullptr) return nullptr;
      return make(MNeg{std::move(operand)}, loc);
    }
    if (accept(Tok::kNot)) {
      MExprPtr operand = parse_unary();
      if (operand == nullptr) return nullptr;
      return make(MNot{std::move(operand)}, loc);
    }
    return parse_app();
  }

  [[nodiscard]] bool at_atom_start() const {
    switch (current_.kind) {
      case Tok::kInt:
      case Tok::kString:
      case Tok::kTrue:
      case Tok::kFalse:
      case Tok::kIdent:
      case Tok::kLParen:
      case Tok::kNilLit:
        return true;
      default:
        return false;
    }
  }

  MExprPtr parse_app() {
    const SrcLoc loc = current_.loc;
    if (accept(Tok::kSpawn)) {
      MExprPtr handle = parse_atom();
      if (handle == nullptr) return nullptr;
      MExprPtr body = parse_atom();
      if (body == nullptr) return nullptr;
      return make(MSpawn{std::move(handle), std::move(body)}, loc);
    }
    if (accept(Tok::kTouch)) {
      MExprPtr handle = parse_atom();
      if (handle == nullptr) return nullptr;
      return make(MTouch{std::move(handle)}, loc);
    }
    if (accept(Tok::kNewfut)) {
      MExprPtr unit_arg = parse_atom();
      if (unit_arg == nullptr) return nullptr;
      if (!std::holds_alternative<MUnit>(unit_arg->node)) {
        diags_.error(loc, "'newfut' takes '()'");
        return nullptr;
      }
      return make(MNewFut{}, loc);
    }
    if (at(Tok::kIdent)) {
      const Symbol name = Symbol::intern(current_.text);
      advance();
      if (!at_atom_start()) return make(MVar{name}, loc);
      std::vector<MExprPtr> args;
      while (at_atom_start()) {
        MExprPtr arg = parse_atom();
        if (arg == nullptr) return nullptr;
        args.push_back(std::move(arg));
      }
      return make(MCall{name, std::move(args)}, loc);
    }
    return parse_atom();
  }

  MExprPtr parse_atom() {
    const SrcLoc loc = current_.loc;
    switch (current_.kind) {
      case Tok::kInt: {
        const std::int64_t value = current_.int_value;
        advance();
        return make(MInt{value}, loc);
      }
      case Tok::kString: {
        std::string value = current_.string_value;
        advance();
        return make(MString{std::move(value)}, loc);
      }
      case Tok::kTrue:
        advance();
        return make(MBool{true}, loc);
      case Tok::kFalse:
        advance();
        return make(MBool{false}, loc);
      case Tok::kNilLit:
        advance();
        return make(MNil{}, loc);
      case Tok::kIdent: {
        const Symbol name = Symbol::intern(current_.text);
        advance();
        return make(MVar{name}, loc);
      }
      case Tok::kLParen: {
        advance();
        if (accept(Tok::kRParen)) return make(MUnit{}, loc);
        MExprPtr inner = parse_expr();
        if (inner == nullptr) return nullptr;
        if (!expect(Tok::kRParen, "')'")) return nullptr;
        return inner;
      }
      default:
        error("expected an expression");
        return nullptr;
    }
  }

  template <typename Node>
  static MExprPtr make(Node node, SrcLoc loc) {
    auto expr = std::make_unique<MExpr>();
    expr->node = std::move(node);
    expr->loc = loc;
    return expr;
  }

  Lexer lexer_;
  DiagnosticEngine& diags_;
  Token current_;
};

}  // namespace

std::optional<MProgram> parse_mml(std::string_view source,
                                  DiagnosticEngine& diags) {
  Parser parser(source, diags);
  auto program = parser.parse();
  if (diags.has_errors()) return std::nullopt;
  return program;
}

MProgram parse_mml_or_throw(std::string_view source) {
  DiagnosticEngine diags;
  auto program = parse_mml(source, diags);
  if (!program) {
    throw std::runtime_error("MiniML parse error:\n" + diags.render());
  }
  return std::move(*program);
}

}  // namespace gtdl::mml
