// MiniML — a second, deliberately different frontend for the same graph
// type IR.
//
// The paper's central claim is language-agnosticism: the analysis
// consumes graph types, so any language whose frontend emits them is
// covered. FutLang (gtdl/frontend) is imperative and statement-based;
// MiniML is an OCaml-flavoured, expression-based functional language
// with `let .. in`, `match` on lists, and ML type spellings (`int
// future`, `int list`). Both lower to gtdl::GTypePtr and share the
// detector, the baseline and the dynamic policies unchanged — and the
// test suite checks that equivalent programs in the two languages infer
// alpha-EQUAL graph types.
//
// Surface syntax:
//
//   let rec dac (n : int) : int =
//     if n < 2 then n
//     else
//       let h : int future = newfut () in
//       spawn h (dac (n - 1));
//       let right = dac (n - 2) in
//       let left = touch h in
//       left + right
//
//   let main () : unit = print (string_of_int (dac 10))
//
// Futures follow the paper's model exactly: `newfut ()` creates an
// uninitialized handle, `spawn h e` (imperative, unit-valued) installs
// the asynchronous computation e, `touch h` blocks and returns its
// value.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "gtdl/frontend/types.hpp"  // reuse the Type representation
#include "gtdl/support/diagnostics.hpp"
#include "gtdl/support/symbol.hpp"

namespace gtdl::mml {

struct MExpr;
using MExprPtr = std::unique_ptr<MExpr>;

struct MInt {
  std::int64_t value;
};
struct MBool {
  bool value;
};
struct MString {
  std::string value;
};
struct MUnit {};
struct MNil {};  // []
struct MVar {
  Symbol name;
};
// let [x : T] = e1 in e2   (unit-let `let () = e1 in e2` uses no name)
struct MLet {
  std::optional<Symbol> name;
  TypePtr annotation;  // may be null
  MExprPtr bound;
  MExprPtr body;
};
struct MIf {
  MExprPtr cond;
  MExprPtr then_branch;
  MExprPtr else_branch;
};
// Full first-order application: f e1 .. en
struct MCall {
  Symbol callee;
  std::vector<MExprPtr> args;
};
// e1; e2
struct MSeq {
  MExprPtr first;
  MExprPtr second;
};
struct MNewFut {};  // newfut () — element type from the let annotation
struct MSpawn {
  MExprPtr handle;
  MExprPtr body;  // evaluated asynchronously by the future thread
};
struct MTouch {
  MExprPtr handle;
};
// e1 :: e2
struct MCons {
  MExprPtr head;
  MExprPtr tail;
};
// match e with | [] -> e1 | x :: xs -> e2
struct MMatch {
  MExprPtr scrutinee;
  MExprPtr nil_case;
  Symbol head_name;
  Symbol tail_name;
  MExprPtr cons_case;
};
enum class MBinOp : unsigned char {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kConcat,  // ^
};
struct MBin {
  MBinOp op;
  MExprPtr lhs;
  MExprPtr rhs;
};
struct MNeg {
  MExprPtr operand;
};
struct MNot {
  MExprPtr operand;
};

struct MExpr {
  std::variant<MInt, MBool, MString, MUnit, MNil, MVar, MLet, MIf, MCall,
               MSeq, MNewFut, MSpawn, MTouch, MCons, MMatch, MBin, MNeg,
               MNot>
      node;
  SrcLoc loc;
  TypePtr type;  // filled by the type checker
};

struct MParam {
  Symbol name;
  TypePtr type;
  SrcLoc loc;
};

// let [rec] f (x1 : T1) .. (xn : Tn) : R = body
// A parameterless definition is spelled `let main () : unit = ...`.
struct MDef {
  Symbol name;
  bool recursive = false;
  std::vector<MParam> params;
  TypePtr return_type;
  MExprPtr body;
  SrcLoc loc;
};

struct MProgram {
  std::vector<MDef> defs;

  [[nodiscard]] const MDef* find(Symbol name) const {
    for (const MDef& def : defs) {
      if (def.name == name) return &def;
    }
    return nullptr;
  }
};

}  // namespace gtdl::mml
