#include "gtdl/mml/infer.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "gtdl/mml/typecheck.hpp"
#include "gtdl/support/overloaded.hpp"

namespace gtdl::mml {

namespace {

struct AbstractVal {
  enum class Kind : unsigned char { kNotFuture, kVertex, kOpaque };
  Kind kind = Kind::kNotFuture;
  Symbol vertex;

  static AbstractVal not_future() { return {}; }
  static AbstractVal of_vertex(Symbol v) { return {Kind::kVertex, v}; }
  static AbstractVal opaque() { return {Kind::kOpaque, Symbol{}}; }
};

class Inferencer {
 public:
  Inferencer(const MProgram& program, DiagnosticEngine& diags,
             const InferOptions& options)
      : program_(program), diags_(diags), options_(options) {}

  std::optional<InferredProgram> run() {
    InferredProgram result;
    infos_ = &result.functions;
    for (const MDef& def : program_.defs) {
      declared_.insert(def.name);
      auto info = infer_def(def);
      if (!info) return std::nullopt;
      result.functions.emplace(def.name, std::move(*info));
    }
    auto main_it = result.functions.find(Symbol::intern("main"));
    if (main_it == result.functions.end()) {
      diags_.error("program has no 'main' definition");
      return std::nullopt;
    }
    result.program_gtype = main_it->second.gtype;
    return result;
  }

 private:
  std::optional<FunctionGraphInfo> infer_def(const MDef& def) {
    FunctionGraphInfo info;
    info.name = def.name;
    info.recursive = def.recursive;
    for (std::size_t i = 0; i < def.params.size(); ++i) {
      if (is_future(*def.params[i].type)) {
        info.future_params.push_back(i);
        info.vertices.push_back(Symbol::intern(def.name.str() + "_" +
                                               def.params[i].name.str()));
      }
    }
    info.usage.assign(info.future_params.size(), ParamUsage{});

    GTypePtr body_graph;
    bool converged = false;
    for (unsigned iter = 1; iter <= options_.max_signature_iterations;
         ++iter) {
      info.iterations = iter;
      WalkState state;
      state.def = &def;
      state.info = &info;
      state.usage.assign(info.future_params.size(), ParamUsage{});
      state.env.emplace_back();
      for (std::size_t k = 0; k < info.future_params.size(); ++k) {
        state.env.back().emplace(
            def.params[info.future_params[k]].name,
            AbstractVal::of_vertex(info.vertices[k]));
      }
      std::vector<GTypePtr> pieces;
      (void)walk(*def.body, state, pieces);
      if (state.failed) return std::nullopt;
      body_graph = gt::nu_all(
          state.nu_list,
          pieces.empty() ? gt::empty() : gt::seq_all(std::move(pieces)));
      if (state.usage == info.usage) {
        converged = true;
        break;
      }
      info.usage = std::move(state.usage);
    }
    if (!converged) {
      diags_.error(def.loc,
                   "graph type of '" + def.name.str() +
                       "' did not reach a fixed point after " +
                       std::to_string(options_.max_signature_iterations) +
                       " inference iterations");
      return std::nullopt;
    }

    GTypePtr g = body_graph;
    if (info.has_classified_params()) {
      g = gt::pi(info.spawn_vertex_params(), info.touch_vertex_params(),
                 std::move(g));
    }
    if (info.recursive) g = gt::rec(def.name, std::move(g));
    info.gtype = std::move(g);
    return info;
  }

  struct WalkState {
    const MDef* def = nullptr;
    const FunctionGraphInfo* info = nullptr;
    std::vector<ParamUsage> usage;
    std::vector<Symbol> nu_list;
    std::vector<std::unordered_map<Symbol, AbstractVal>> env;
    bool failed = false;
  };

  void fail(SrcLoc loc, std::string message, WalkState& state) {
    if (!state.failed) diags_.error(loc, std::move(message));
    state.failed = true;
  }

  AbstractVal lookup(Symbol name, const WalkState& state) const {
    for (auto it = state.env.rbegin(); it != state.env.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return AbstractVal::not_future();
  }

  void mark_param(Symbol vertex, bool spawned, WalkState& state) const {
    for (std::size_t k = 0; k < state.info->vertices.size(); ++k) {
      if (state.info->vertices[k] == vertex) {
        (spawned ? state.usage[k].spawned : state.usage[k].touched) = true;
      }
    }
  }

  AbstractVal walk(const MExpr& expr, WalkState& state,
                   std::vector<GTypePtr>& pieces) {
    return std::visit(
        Overloaded{
            [&](const MInt&) { return AbstractVal::not_future(); },
            [&](const MBool&) { return AbstractVal::not_future(); },
            [&](const MString&) { return AbstractVal::not_future(); },
            [&](const MUnit&) { return AbstractVal::not_future(); },
            [&](const MNil&) { return AbstractVal::not_future(); },
            [&](const MVar& node) { return lookup(node.name, state); },
            [&](const MLet& node) {
              const AbstractVal bound = walk(*node.bound, state, pieces);
              state.env.emplace_back();
              if (node.name.has_value()) {
                state.env.back().emplace(*node.name, bound);
              }
              const AbstractVal result = walk(*node.body, state, pieces);
              state.env.pop_back();
              return result;
            },
            [&](const MIf& node) {
              (void)walk(*node.cond, state, pieces);
              std::vector<GTypePtr> then_pieces;
              const AbstractVal then_val =
                  walk(*node.then_branch, state, then_pieces);
              std::vector<GTypePtr> else_pieces;
              const AbstractVal else_val =
                  walk(*node.else_branch, state, else_pieces);
              const GTypePtr then_graph =
                  then_pieces.empty() ? gt::empty()
                                      : gt::seq_all(std::move(then_pieces));
              const GTypePtr else_graph =
                  else_pieces.empty() ? gt::empty()
                                      : gt::seq_all(std::move(else_pieces));
              // Interning makes structurally equal graphs the same node;
              // identical branches need no disjunction (Norm(G∨G) =
              // Norm(G), and DF:OR's equal-spawns condition is trivial).
              pieces.push_back(then_graph.get() == else_graph.get()
                                   ? then_graph
                                   : gt::alt(then_graph, else_graph));
              return merge(then_val, else_val, *expr.type);
            },
            [&](const MCall& node) { return call(expr, node, state, pieces); },
            [&](const MSeq& node) {
              (void)walk(*node.first, state, pieces);
              return walk(*node.second, state, pieces);
            },
            [&](const MNewFut&) {
              const Symbol vertex =
                  Symbol::fresh(state.def->name.str() + "_u");
              state.nu_list.push_back(vertex);
              return AbstractVal::of_vertex(vertex);
            },
            [&](const MSpawn& node) {
              const AbstractVal handle = walk(*node.handle, state, pieces);
              if (handle.kind != AbstractVal::Kind::kVertex) {
                fail(expr.loc,
                     "cannot statically identify the spawned future", state);
                return AbstractVal::not_future();
              }
              mark_param(handle.vertex, /*spawned=*/true, state);
              std::vector<GTypePtr> body_pieces;
              (void)walk(*node.body, state, body_pieces);
              pieces.push_back(gt::spawn(
                  body_pieces.empty()
                      ? gt::empty()
                      : gt::seq_all(std::move(body_pieces)),
                  handle.vertex));
              return AbstractVal::not_future();
            },
            [&](const MTouch& node) {
              const AbstractVal handle = walk(*node.handle, state, pieces);
              if (handle.kind != AbstractVal::Kind::kVertex) {
                fail(expr.loc,
                     "cannot statically identify the touched future", state);
                return AbstractVal::not_future();
              }
              mark_param(handle.vertex, /*spawned=*/false, state);
              pieces.push_back(gt::touch(handle.vertex));
              return AbstractVal::not_future();
            },
            [&](const MCons& node) {
              (void)walk(*node.head, state, pieces);
              (void)walk(*node.tail, state, pieces);
              return AbstractVal::not_future();
            },
            [&](const MMatch& node) {
              (void)walk(*node.scrutinee, state, pieces);
              std::vector<GTypePtr> nil_pieces;
              const AbstractVal nil_val =
                  walk(*node.nil_case, state, nil_pieces);
              state.env.emplace_back();
              state.env.back().emplace(node.head_name,
                                       AbstractVal::not_future());
              state.env.back().emplace(node.tail_name,
                                       AbstractVal::not_future());
              std::vector<GTypePtr> cons_pieces;
              const AbstractVal cons_val =
                  walk(*node.cons_case, state, cons_pieces);
              state.env.pop_back();
              const GTypePtr nil_graph =
                  nil_pieces.empty() ? gt::empty()
                                     : gt::seq_all(std::move(nil_pieces));
              const GTypePtr cons_graph =
                  cons_pieces.empty() ? gt::empty()
                                      : gt::seq_all(std::move(cons_pieces));
              // Same branch-collapse as MIf above.
              pieces.push_back(nil_graph.get() == cons_graph.get()
                                   ? nil_graph
                                   : gt::alt(nil_graph, cons_graph));
              return merge(nil_val, cons_val, *expr.type);
            },
            [&](const MBin& node) {
              (void)walk(*node.lhs, state, pieces);
              (void)walk(*node.rhs, state, pieces);
              return AbstractVal::not_future();
            },
            [&](const MNeg& node) {
              (void)walk(*node.operand, state, pieces);
              return AbstractVal::not_future();
            },
            [&](const MNot& node) {
              (void)walk(*node.operand, state, pieces);
              return AbstractVal::not_future();
            },
        },
        expr.node);
  }

  // Joins the abstract values of two branches.
  static AbstractVal merge(const AbstractVal& a, const AbstractVal& b,
                           const Type& type) {
    if (!is_future(type)) return AbstractVal::not_future();
    if (a.kind == AbstractVal::Kind::kVertex &&
        b.kind == AbstractVal::Kind::kVertex && a.vertex == b.vertex) {
      return a;
    }
    return AbstractVal::opaque();
  }

  AbstractVal call(const MExpr& expr, const MCall& node, WalkState& state,
                   std::vector<GTypePtr>& pieces) {
    std::vector<AbstractVal> arg_vals;
    arg_vals.reserve(node.args.size());
    for (const MExprPtr& arg : node.args) {
      arg_vals.push_back(walk(*arg, state, pieces));
    }
    if (is_mml_builtin(node.callee)) return AbstractVal::not_future();

    const bool self = node.callee == state.def->name;
    const FunctionGraphInfo* callee_info = nullptr;
    if (self) {
      callee_info = state.info;
    } else {
      if (declared_.count(node.callee) == 0) {
        fail(expr.loc,
             "graph inference requires '" + node.callee.str() +
                 "' to be defined before this call",
             state);
        return AbstractVal::not_future();
      }
      auto it = infos_->find(node.callee);
      if (it == infos_->end()) {
        fail(expr.loc, "no graph type for '" + node.callee.str() + "'",
             state);
        return AbstractVal::not_future();
      }
      callee_info = &it->second;
    }

    std::vector<Symbol> spawn_args;
    std::vector<Symbol> touch_args;
    for (std::size_t k = 0; k < callee_info->future_params.size(); ++k) {
      const ParamUsage u = callee_info->usage[k];
      if (!u.spawned && !u.touched) continue;
      const std::size_t arg_index = callee_info->future_params[k];
      if (arg_index >= arg_vals.size()) continue;  // arity error upstream
      const AbstractVal& val = arg_vals[arg_index];
      if (val.kind != AbstractVal::Kind::kVertex) {
        fail(node.args[arg_index]->loc,
             "cannot statically identify the future passed to '" +
                 node.callee.str() + "'",
             state);
        return AbstractVal::not_future();
      }
      if (u.spawned) {
        spawn_args.push_back(val.vertex);
        mark_param(val.vertex, /*spawned=*/true, state);
      } else if (u.touched) {
        touch_args.push_back(val.vertex);
        mark_param(val.vertex, /*spawned=*/false, state);
      }
    }

    const bool classified = std::any_of(
        callee_info->usage.begin(), callee_info->usage.end(),
        [](const ParamUsage& u) { return u.spawned || u.touched; });
    GTypePtr fn_node = self ? gt::var(state.def->name) : callee_info->gtype;
    if (classified) {
      pieces.push_back(gt::app(std::move(fn_node), std::move(spawn_args),
                               std::move(touch_args)));
    } else {
      pieces.push_back(std::move(fn_node));
    }
    return AbstractVal::not_future();
  }

  const MProgram& program_;
  DiagnosticEngine& diags_;
  const InferOptions& options_;
  std::unordered_set<Symbol> declared_;
  std::unordered_map<Symbol, FunctionGraphInfo>* infos_ = nullptr;
};

}  // namespace

std::optional<InferredProgram> infer_mml_graph_types(
    const MProgram& program, DiagnosticEngine& diags,
    const InferOptions& options) {
  Inferencer inferencer(program, diags, options);
  auto result = inferencer.run();
  if (diags.has_errors()) return std::nullopt;
  return result;
}

}  // namespace gtdl::mml
