// Graph type inference for MiniML.
//
// Reuses the signature machinery of the FutLang inferencer (ParamUsage,
// FunctionGraphInfo, InferOptions, InferredProgram — see
// gtdl/frontend/infer.hpp) and produces the SAME graph-type IR, which is
// the whole point: the detector downstream has no idea which language
// the type came from. The GML-faithful behaviours are preserved:
// ν binders are hoisted to definition tops and recursive signatures get
// at most `max_signature_iterations` Mycroft rounds.
//
// Restrictions: definitions may call earlier definitions or themselves
// (with `let rec`); touched/spawned handles must be statically
// identifiable (e.g. not an `if` yielding two different futures).

#pragma once

#include <optional>

#include "gtdl/frontend/infer.hpp"
#include "gtdl/mml/ast.hpp"

namespace gtdl::mml {

// Precondition: `program` passed typecheck_mml.
[[nodiscard]] std::optional<InferredProgram> infer_mml_graph_types(
    const MProgram& program, DiagnosticEngine& diags,
    const InferOptions& options = {});

}  // namespace gtdl::mml
