// MiniML lexer and parser.
//
// Grammar (EBNF; `(* .. *)` comments):
//
//   program := def*
//   def     := 'let' ['rec'] IDENT param* ':' type '=' expr
//   param   := '(' IDENT ':' type ')' | '(' ')'
//   type    := base ('future' | 'list')*          -- ML postfix
//   base    := 'int' | 'bool' | 'unit' | 'string' | '(' type ')'
//   expr    := 'let' (IDENT [':' type] | '(' ')') '=' expr 'in' expr
//            | 'if' expr 'then' expr 'else' expr
//            | 'match' expr 'with' ['|'] '[]' '->' expr
//              '|' IDENT '::' IDENT '->' expr
//            | seq
//   seq     := or [';' expr]                      -- right associative
//   or      := and ('||' and)*
//   and     := cmp ('&&' cmp)*
//   cmp     := cons [('=' | '<>' | '<' | '<=' | '>' | '>=') cons]
//   cons    := concat ['::' cons]                 -- right associative
//   concat  := add ('^' add)*
//   add     := mul (('+' | '-') mul)*
//   mul     := unary (('*' | '/' | 'mod') unary)*
//   unary   := '-' unary | 'not' unary | app
//   app     := 'spawn' atom atom | 'touch' atom | 'newfut' atom
//            | IDENT atom+ | atom
//   atom    := INT | STRING | 'true' | 'false' | '(' ')' | '[]'
//            | IDENT | '(' expr ')'

#pragma once

#include <optional>
#include <string_view>

#include "gtdl/mml/ast.hpp"

namespace gtdl::mml {

[[nodiscard]] std::optional<MProgram> parse_mml(std::string_view source,
                                                DiagnosticEngine& diags);
[[nodiscard]] MProgram parse_mml_or_throw(std::string_view source);

}  // namespace gtdl::mml
