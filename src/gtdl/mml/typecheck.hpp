// MiniML type checker.
//
// Checks a parsed program and fills MExpr::type. Rules mirror FutLang's
// restrictions (they exist for the benefit of graph inference, not the
// language): no futures in return types, no future future / future list
// elements... (list of futures is rejected), `newfut ()` requires a type
// annotation on its binding, and `main` takes no parameters and returns
// unit.
//
// Builtins: print : string -> unit, string_of_int : int -> string,
// rand : unit -> int, length : T list -> int, hd : T list -> T,
// tl : T list -> T list, append : T list -> T list -> T list,
// take/drop : T list -> int -> T list, range : int -> int -> int list.

#pragma once

#include "gtdl/mml/ast.hpp"

namespace gtdl::mml {

[[nodiscard]] bool is_mml_builtin(Symbol name);

[[nodiscard]] bool typecheck_mml(MProgram& program, DiagnosticEngine& diags);

}  // namespace gtdl::mml
