// MiniML pipeline: source -> AST -> types -> graph types.

#pragma once

#include <optional>
#include <string_view>

#include "gtdl/mml/ast.hpp"
#include "gtdl/mml/infer.hpp"

namespace gtdl::mml {

struct CompiledMml {
  MProgram program;
  InferredProgram inferred;
};

[[nodiscard]] std::optional<CompiledMml> compile_mml(
    std::string_view source, DiagnosticEngine& diags,
    const InferOptions& options = {});

[[nodiscard]] CompiledMml compile_mml_or_throw(std::string_view source,
                                               const InferOptions& options = {});

}  // namespace gtdl::mml
