#include "gtdl/mml/driver.hpp"

#include <stdexcept>

#include "gtdl/mml/parser.hpp"
#include "gtdl/mml/typecheck.hpp"
#include "gtdl/support/fault.hpp"

namespace gtdl::mml {

std::optional<CompiledMml> compile_mml(std::string_view source,
                                       DiagnosticEngine& diags,
                                       const InferOptions& options) {
  fault::maybe_inject("parse");
  auto program = parse_mml(source, diags);
  if (!program) return std::nullopt;
  if (!typecheck_mml(*program, diags)) return std::nullopt;
  auto inferred = infer_mml_graph_types(*program, diags, options);
  if (!inferred) return std::nullopt;
  CompiledMml out;
  out.program = std::move(*program);
  out.inferred = std::move(*inferred);
  return out;
}

CompiledMml compile_mml_or_throw(std::string_view source,
                                 const InferOptions& options) {
  DiagnosticEngine diags;
  auto compiled = compile_mml(source, diags, options);
  if (!compiled) {
    throw std::runtime_error("MiniML compilation failed:\n" + diags.render());
  }
  return std::move(*compiled);
}

}  // namespace gtdl::mml
