#include "gtdl/mml/typecheck.hpp"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gtdl/support/overloaded.hpp"

namespace gtdl::mml {

namespace {

const std::unordered_set<std::string_view>& builtin_names() {
  static const std::unordered_set<std::string_view> names{
      "print", "string_of_int", "rand",  "length", "hd",
      "tl",    "append",        "take",  "drop",   "range",
  };
  return names;
}

class Checker {
 public:
  Checker(MProgram& program, DiagnosticEngine& diags)
      : program_(program), diags_(diags) {}

  bool run() {
    std::unordered_set<Symbol> seen;
    for (const MDef& def : program_.defs) {
      if (is_mml_builtin(def.name)) {
        diags_.error(def.loc,
                     "definition '" + def.name.str() + "' shadows a builtin");
      }
      if (!seen.insert(def.name).second) {
        diags_.error(def.loc,
                     "duplicate definition '" + def.name.str() + "'");
      }
      if (is_future(*def.return_type)) {
        diags_.error(def.loc, "'" + def.name.str() +
                                  "' returns a future; graph inference "
                                  "cannot track escaping handles");
      }
      std::unordered_set<Symbol> params;
      for (const MParam& p : def.params) {
        if (!params.insert(p.name).second) {
          diags_.error(p.loc, "duplicate parameter '" + p.name.str() + "'");
        }
        check_type(*p.type, p.loc);
      }
    }
    const MDef* main = program_.find(Symbol::intern("main"));
    if (main == nullptr) {
      diags_.error("program has no 'main' definition");
    } else {
      if (!main->params.empty()) {
        diags_.error(main->loc, "'main' must take no parameters");
      }
      if (!is_prim(*main->return_type, PrimKind::kUnit)) {
        diags_.error(main->loc, "'main' must return unit");
      }
    }
    if (diags_.has_errors()) return false;
    for (MDef& def : program_.defs) check_def(def);
    return !diags_.has_errors();
  }

 private:
  void check_type(const Type& t, SrcLoc loc) {
    std::visit(Overloaded{
                   [](const TPrim&) {},
                   [&](const TList& l) {
                     if (is_future(*l.element)) {
                       diags_.error(loc, "future list is not supported");
                     }
                     check_type(*l.element, loc);
                   },
                   [&](const TFuture& f) {
                     if (is_future(*f.element)) {
                       diags_.error(loc, "future future is not supported");
                     }
                     check_type(*f.element, loc);
                   },
                   [&](const TFvec&) {
                     // fvec is FutLang-only surface syntax.
                     diags_.error(loc,
                                  "fvec is not supported in the MML frontend");
                   },
               },
               t.node);
  }

  void check_def(MDef& def) {
    current_ = &def;
    env_.clear();
    env_.emplace_back();
    for (const MParam& p : def.params) env_.back().emplace(p.name, p.type);
    const TypePtr body = check(*def.body, def.return_type);
    if (body != nullptr && !type_equal(*body, *def.return_type)) {
      diags_.error(def.loc, "body of '" + def.name.str() + "' has type " +
                                to_string(*body) + ", declared " +
                                to_string(*def.return_type));
    }
  }

  TypePtr lookup(Symbol name) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return nullptr;
  }

  // Checks `expr` with an optional expected type (used to type [] and to
  // propagate let annotations into newfut).
  TypePtr check(MExpr& expr, const TypePtr& expected) {
    const TypePtr type = std::visit(
        Overloaded{
            [&](MInt&) { return ty::intt(); },
            [&](MBool&) { return ty::boolt(); },
            [&](MString&) { return ty::string(); },
            [&](MUnit&) { return ty::unit(); },
            [&](MNil&) -> TypePtr {
              if (expected == nullptr || !is_list(*expected)) {
                diags_.error(expr.loc,
                             "cannot infer the element type of '[]' here; "
                             "annotate the binding");
                return nullptr;
              }
              return expected;
            },
            [&](MVar& node) -> TypePtr {
              const TypePtr t = lookup(node.name);
              if (t == nullptr) {
                diags_.error(expr.loc,
                             "unbound variable '" + node.name.str() + "'");
              }
              return t;
            },
            [&](MLet& node) -> TypePtr {
              TypePtr bound = check(*node.bound, node.annotation);
              if (node.annotation != nullptr) {
                if (bound != nullptr &&
                    !type_equal(*bound, *node.annotation)) {
                  diags_.error(expr.loc,
                               "bound expression has type " +
                                   to_string(*bound) + ", annotation says " +
                                   to_string(*node.annotation));
                }
                bound = node.annotation;
              }
              if (bound == nullptr) return nullptr;
              check_type(*bound, expr.loc);
              env_.emplace_back();
              if (node.name.has_value()) {
                env_.back().emplace(*node.name, bound);
              } else if (!is_prim(*bound, PrimKind::kUnit)) {
                diags_.error(expr.loc, "'let () =' expects a unit-valued "
                                       "expression, got " +
                                           to_string(*bound));
              }
              const TypePtr body = check(*node.body, expected);
              env_.pop_back();
              return body;
            },
            [&](MIf& node) -> TypePtr {
              require(*node.cond, ty::boolt(), "if condition");
              const TypePtr then_type = check(*node.then_branch, expected);
              const TypePtr else_type = check(*node.else_branch, expected);
              if (then_type != nullptr && else_type != nullptr &&
                  !type_equal(*then_type, *else_type)) {
                diags_.error(expr.loc, "if branches have different types: " +
                                           to_string(*then_type) + " vs " +
                                           to_string(*else_type));
                return nullptr;
              }
              return then_type != nullptr ? then_type : else_type;
            },
            [&](MCall& node) { return check_call(expr, node, expected); },
            [&](MSeq& node) -> TypePtr {
              const TypePtr first = check(*node.first, nullptr);
              if (first != nullptr && !is_prim(*first, PrimKind::kUnit)) {
                diags_.error(node.first->loc,
                             "left of ';' must be unit, got " +
                                 to_string(*first) +
                                 " (bind it with 'let')");
              }
              return check(*node.second, expected);
            },
            [&](MNewFut&) -> TypePtr {
              if (expected == nullptr || !is_future(*expected)) {
                diags_.error(expr.loc,
                             "'newfut ()' needs a future type from its "
                             "binding, e.g. let h : int future = newfut ()");
                return nullptr;
              }
              return expected;
            },
            [&](MSpawn& node) -> TypePtr {
              const TypePtr handle = check(*node.handle, nullptr);
              if (handle == nullptr) return ty::unit();
              if (!is_future(*handle)) {
                diags_.error(expr.loc, "spawn expects a future handle, got " +
                                           to_string(*handle));
                return ty::unit();
              }
              const TypePtr element = element_type(*handle);
              const TypePtr body = check(*node.body, element);
              if (body != nullptr && !type_equal(*body, *element)) {
                diags_.error(node.body->loc,
                             "spawned computation has type " +
                                 to_string(*body) + ", the handle holds " +
                                 to_string(*element));
              }
              return ty::unit();
            },
            [&](MTouch& node) -> TypePtr {
              const TypePtr handle = check(*node.handle, nullptr);
              if (handle == nullptr) return nullptr;
              if (!is_future(*handle)) {
                diags_.error(expr.loc, "touch expects a future handle, got " +
                                           to_string(*handle));
                return nullptr;
              }
              return element_type(*handle);
            },
            [&](MCons& node) -> TypePtr {
              const TypePtr head = check(*node.head, nullptr);
              if (head == nullptr) return nullptr;
              if (is_future(*head)) {
                diags_.error(expr.loc, "future list is not supported");
                return nullptr;
              }
              const TypePtr list_type = ty::list(head);
              const TypePtr tail = check(*node.tail, list_type);
              if (tail != nullptr && !type_equal(*tail, *list_type)) {
                diags_.error(node.tail->loc, "'::' expects " +
                                                 to_string(*list_type) +
                                                 ", got " + to_string(*tail));
              }
              return list_type;
            },
            [&](MMatch& node) -> TypePtr {
              const TypePtr scrutinee = check(*node.scrutinee, nullptr);
              if (scrutinee == nullptr) return nullptr;
              if (!is_list(*scrutinee)) {
                diags_.error(node.scrutinee->loc,
                             "match scrutinee must be a list, got " +
                                 to_string(*scrutinee));
                return nullptr;
              }
              const TypePtr nil_type = check(*node.nil_case, expected);
              env_.emplace_back();
              env_.back().emplace(node.head_name, element_type(*scrutinee));
              env_.back().emplace(node.tail_name, scrutinee);
              const TypePtr cons_type = check(*node.cons_case, expected);
              env_.pop_back();
              if (nil_type != nullptr && cons_type != nullptr &&
                  !type_equal(*nil_type, *cons_type)) {
                diags_.error(expr.loc,
                             "match branches have different types: " +
                                 to_string(*nil_type) + " vs " +
                                 to_string(*cons_type));
                return nullptr;
              }
              return nil_type != nullptr ? nil_type : cons_type;
            },
            [&](MBin& node) { return check_bin(expr, node); },
            [&](MNeg& node) -> TypePtr {
              require(*node.operand, ty::intt(), "unary '-'");
              return ty::intt();
            },
            [&](MNot& node) -> TypePtr {
              require(*node.operand, ty::boolt(), "'not'");
              return ty::boolt();
            },
        },
        expr.node);
    expr.type = type;
    return type;
  }

  void require(MExpr& expr, const TypePtr& expected, const char* what) {
    const TypePtr actual = check(expr, expected);
    if (actual != nullptr && !type_equal(*actual, *expected)) {
      diags_.error(expr.loc, std::string(what) + " expects " +
                                 to_string(*expected) + ", got " +
                                 to_string(*actual));
    }
  }

  TypePtr check_bin(MExpr& expr, MBin& node) {
    switch (node.op) {
      case MBinOp::kAdd:
      case MBinOp::kSub:
      case MBinOp::kMul:
      case MBinOp::kDiv:
      case MBinOp::kMod:
        require(*node.lhs, ty::intt(), "arithmetic");
        require(*node.rhs, ty::intt(), "arithmetic");
        return ty::intt();
      case MBinOp::kConcat:
        require(*node.lhs, ty::string(), "'^'");
        require(*node.rhs, ty::string(), "'^'");
        return ty::string();
      case MBinOp::kEq:
      case MBinOp::kNe: {
        const TypePtr lhs = check(*node.lhs, nullptr);
        const TypePtr rhs = check(*node.rhs, lhs);
        if (lhs != nullptr && rhs != nullptr) {
          if (!type_equal(*lhs, *rhs)) {
            diags_.error(expr.loc, "cannot compare " + to_string(*lhs) +
                                       " with " + to_string(*rhs));
          } else if (is_future(*lhs) || is_list(*lhs)) {
            diags_.error(expr.loc,
                         "equality is defined on base types only");
          }
        }
        return ty::boolt();
      }
      case MBinOp::kLt:
      case MBinOp::kLe:
      case MBinOp::kGt:
      case MBinOp::kGe:
        require(*node.lhs, ty::intt(), "comparison");
        require(*node.rhs, ty::intt(), "comparison");
        return ty::boolt();
      case MBinOp::kAnd:
      case MBinOp::kOr:
        require(*node.lhs, ty::boolt(), "logical operator");
        require(*node.rhs, ty::boolt(), "logical operator");
        return ty::boolt();
    }
    return nullptr;
  }

  TypePtr check_call(MExpr& expr, MCall& node, const TypePtr& expected) {
    (void)expected;
    if (is_mml_builtin(node.callee)) return check_builtin(expr, node);
    if (current_ != nullptr && node.callee == current_->name &&
        !current_->recursive) {
      diags_.error(expr.loc, "'" + node.callee.str() +
                                 "' is not in scope in its own body; use "
                                 "'let rec'");
    }
    const MDef* callee = program_.find(node.callee);
    if (callee == nullptr) {
      diags_.error(expr.loc,
                   "call to unknown definition '" + node.callee.str() + "'");
      for (MExprPtr& arg : node.args) check(*arg, nullptr);
      return nullptr;
    }
    // A parameterless definition is invoked as `f ()`.
    if (callee->params.empty()) {
      if (node.args.size() != 1 ||
          !std::holds_alternative<MUnit>(node.args[0]->node)) {
        diags_.error(expr.loc, "'" + node.callee.str() +
                                   "' takes '()' (no parameters)");
      } else {
        check(*node.args[0], ty::unit());
      }
      return callee->return_type;
    }
    if (node.args.size() != callee->params.size()) {
      diags_.error(expr.loc, "'" + node.callee.str() + "' expects " +
                                 std::to_string(callee->params.size()) +
                                 " argument(s), got " +
                                 std::to_string(node.args.size()));
      return callee->return_type;
    }
    for (std::size_t i = 0; i < node.args.size(); ++i) {
      const TypePtr want = callee->params[i].type;
      const TypePtr got = check(*node.args[i], want);
      if (got != nullptr && !type_equal(*got, *want)) {
        diags_.error(node.args[i]->loc,
                     "argument " + std::to_string(i + 1) + " of '" +
                         node.callee.str() + "' expects " +
                         to_string(*want) + ", got " + to_string(*got));
      }
    }
    return callee->return_type;
  }

  TypePtr check_builtin(MExpr& expr, MCall& node) {
    const std::string name = node.callee.str();
    const auto arity = [&](std::size_t want) {
      if (node.args.size() == want) return true;
      diags_.error(expr.loc, "'" + name + "' expects " +
                                 std::to_string(want) + " argument(s)");
      return false;
    };
    const auto list_arg = [&](std::size_t i) -> TypePtr {
      const TypePtr t = check(*node.args[i], nullptr);
      if (t == nullptr) return nullptr;
      if (!is_list(*t)) {
        diags_.error(node.args[i]->loc,
                     "'" + name + "' expects a list, got " + to_string(*t));
        return nullptr;
      }
      return t;
    };
    if (name == "print") {
      if (arity(1)) require(*node.args[0], ty::string(), "'print'");
      return ty::unit();
    }
    if (name == "string_of_int") {
      if (arity(1)) require(*node.args[0], ty::intt(), "'string_of_int'");
      return ty::string();
    }
    if (name == "rand") {
      if (arity(1)) require(*node.args[0], ty::unit(), "'rand'");
      return ty::intt();
    }
    if (name == "length") {
      if (arity(1)) list_arg(0);
      return ty::intt();
    }
    if (name == "hd") {
      if (!arity(1)) return nullptr;
      const TypePtr t = list_arg(0);
      return t == nullptr ? nullptr : element_type(*t);
    }
    if (name == "tl") {
      if (!arity(1)) return nullptr;
      return list_arg(0);
    }
    if (name == "append") {
      if (!arity(2)) return nullptr;
      const TypePtr lhs = list_arg(0);
      if (lhs == nullptr) return nullptr;
      require(*node.args[1], lhs, "'append'");
      return lhs;
    }
    if (name == "take" || name == "drop") {
      if (!arity(2)) return nullptr;
      const TypePtr t = list_arg(0);
      require(*node.args[1], ty::intt(), name.c_str());
      return t;
    }
    if (name == "range") {
      if (arity(2)) {
        require(*node.args[0], ty::intt(), "'range'");
        require(*node.args[1], ty::intt(), "'range'");
      }
      return ty::list(ty::intt());
    }
    diags_.error(expr.loc, "unknown builtin '" + name + "'");
    return nullptr;
  }

  MProgram& program_;
  DiagnosticEngine& diags_;
  std::vector<std::unordered_map<Symbol, TypePtr>> env_;
  const MDef* current_ = nullptr;
};

}  // namespace

bool is_mml_builtin(Symbol name) {
  return builtin_names().count(name.view()) != 0;
}

bool typecheck_mml(MProgram& program, DiagnosticEngine& diags) {
  Checker checker(program, diags);
  return checker.run();
}

}  // namespace gtdl::mml
