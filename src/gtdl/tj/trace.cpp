#include "gtdl/tj/trace.hpp"

#include "gtdl/support/overloaded.hpp"

namespace gtdl {

std::string to_string(const Action& action) {
  std::string out;
  switch (action.kind) {
    case ActionKind::kInit:
      out = "init(";
      out += action.thread.view();
      out += ')';
      return out;
    case ActionKind::kFork:
      out = "fork(";
      break;
    case ActionKind::kJoin:
      out = "join(";
      break;
  }
  out += action.thread.view();
  out += ',';
  out += action.target.view();
  out += ')';
  return out;
}

std::string to_string(const Trace& trace) {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i != 0) out += "; ";
    out += to_string(trace[i]);
  }
  return out;
}

namespace {

// Fig. 6:
//   TR:EMPTY   • ~>_a ·
//   TR:SEQ     g1 ⊕ g2 ~>_a t1; t2
//   TR:SPAWN   g /u ~>_a fork(a,u); t   where g ~>_u t
//   TR:TOUCH   ᵘ\ ~>_a join(a,u)
void emit(const GraphExpr& g, Symbol current, Trace& out) {
  std::visit(Overloaded{
                 [](const GESingleton&) {},
                 [&](const GESeq& node) {
                   emit(*node.lhs, current, out);
                   emit(*node.rhs, current, out);
                 },
                 [&](const GESpawn& node) {
                   out.push_back(Action::fork(current, node.vertex));
                   // The spawned thread is named by its designated vertex.
                   emit(*node.body, node.vertex, out);
                 },
                 [&](const GETouch& node) {
                   out.push_back(Action::join(current, node.vertex));
                 },
             },
             g.node);
}

}  // namespace

Trace trace_of_graph(const GraphExpr& g, Symbol main) {
  Trace out;
  emit(g, main, out);
  return out;
}

Trace trace_with_init(const GraphExpr& g, Symbol main) {
  Trace out;
  out.push_back(Action::init(main));
  emit(g, main, out);
  return out;
}

}  // namespace gtdl
