#include "gtdl/tj/trace.hpp"

#include "gtdl/support/overloaded.hpp"

namespace gtdl {

std::string to_string(const Action& action) {
  std::string out;
  switch (action.kind) {
    case ActionKind::kInit:
      out = "init(";
      out += action.thread.view();
      out += ')';
      return out;
    case ActionKind::kFork:
      out = "fork(";
      break;
    case ActionKind::kJoin:
      out = "join(";
      break;
  }
  out += action.thread.view();
  out += ',';
  out += action.target.view();
  out += ')';
  return out;
}

std::string to_string(const Trace& trace) {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i != 0) out += "; ";
    out += to_string(trace[i]);
  }
  return out;
}

namespace {

// Fig. 6:
//   TR:EMPTY   • ~>_a ·
//   TR:SEQ     g1 ⊕ g2 ~>_a t1; t2
//   TR:SPAWN   g /u ~>_a fork(a,u); t   where g ~>_u t
//   TR:TOUCH   ᵘ\ ~>_a join(a,u)
// Pre-order over an explicit stack (actions of the lhs before the rhs,
// a fork before its body's actions) — ingested dumps nest far deeper
// than a recursive walk could survive. Each stack entry carries the
// thread name `a` the subtree is traced under.
void emit(const GraphExpr& g, Symbol current, Trace& out) {
  struct Pending {
    const GraphExpr* expr;
    Symbol thread;
  };
  std::vector<Pending> stack = {{&g, current}};
  while (!stack.empty()) {
    const Pending p = stack.back();
    stack.pop_back();
    std::visit(Overloaded{
                   [](const GESingleton&) {},
                   [&](const GESeq& node) {
                     stack.push_back({node.rhs.get(), p.thread});
                     stack.push_back({node.lhs.get(), p.thread});
                   },
                   [&](const GESpawn& node) {
                     out.push_back(Action::fork(p.thread, node.vertex));
                     // The spawned thread is named by its designated vertex.
                     stack.push_back({node.body.get(), node.vertex});
                   },
                   [&](const GETouch& node) {
                     out.push_back(Action::join(p.thread, node.vertex));
                   },
               },
               p.expr->node);
  }
}

}  // namespace

Trace trace_of_graph(const GraphExpr& g, Symbol main) {
  Trace out;
  emit(g, main, out);
  return out;
}

Trace trace_with_init(const GraphExpr& g, Symbol main) {
  Trace out;
  out.push_back(Action::init(main));
  emit(g, main, out);
  return out;
}

}  // namespace gtdl
