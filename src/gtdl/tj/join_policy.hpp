// Dynamic deadlock-avoidance policies: Transitive Joins and Known Joins.
//
// Transitive Joins (Voss, Cogumbreiro, Sarkar, PPoPP'19 — the paper's
// soundness target) defines a "permission to join" relation ≤ over threads
// as the least relation closed under (paper §4.2):
//
//   TJ-LEFT   if t ⊢ c ⊑ a then t; fork(a,b) ⊢ c ≤ b
//   TJ-RIGHT  if t ⊢ a ≤ c then t; fork(a,b) ⊢ b ≤ c
//   TJ-MONO   permissions persist as the trace grows
//
// (⊑ is the reflexive extension of ≤, so the spawner itself may join its
// child.) A trace is TJ-valid if it starts with init(main), every fork
// introduces a genuinely new thread from an existing one, and every
// join(a,b) has a ≤ b at that point. TJ-validity implies deadlock freedom.
//
// Known Joins (Cogumbreiro et al., OOPSLA'17) is the weaker ancestor of
// TJ: a thread may join only futures it *knows* — those it spawned itself
// plus those its spawner knew at fork time. KJ lacks the TJ-LEFT closure
// over every thread that could join the spawner, which is exactly why it
// rejects programs (like the paper's Fibonacci) in which handles travel
// "sideways" between threads that never spawned each other.
//
// Both policies are exposed (a) as incremental monitors, used online by
// the futures runtime, and (b) as whole-trace validators, used to judge
// interpreter traces and graph serializations.

#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "gtdl/support/ordered_set.hpp"
#include "gtdl/support/symbol.hpp"
#include "gtdl/tj/trace.hpp"

namespace gtdl {

// Outcome of feeding one action to a monitor. `ok()` means the action is
// permitted by the policy; otherwise `reason` explains the violation.
struct PolicyStep {
  bool valid = true;
  std::string reason;

  [[nodiscard]] bool ok() const noexcept { return valid; }
  static PolicyStep accept() { return {}; }
  static PolicyStep reject(std::string why) { return {false, std::move(why)}; }
};

// Incremental judge of trace validity. Implementations are stateful and
// single-threaded; the futures runtime serializes calls under its
// registry lock.
class JoinPolicyMonitor {
 public:
  virtual ~JoinPolicyMonitor() = default;

  // VALID-INIT: begins the trace with main thread `a`. Must be the first
  // call and must happen exactly once.
  virtual PolicyStep on_init(Symbol a) = 0;
  // VALID-FORK: a must exist, b must be new.
  virtual PolicyStep on_fork(Symbol a, Symbol b) = 0;
  // VALID-JOIN: the policy's permission relation must allow a to join b.
  virtual PolicyStep on_join(Symbol a, Symbol b) = 0;

  [[nodiscard]] virtual std::string policy_name() const = 0;
};

// Transitive Joins monitor. Maintains joinable[x] = { y : x ≤ y } plus the
// inverse index needed to apply TJ-LEFT in time proportional to the number
// of threads that may join the forking thread.
class TransitiveJoinsMonitor final : public JoinPolicyMonitor {
 public:
  PolicyStep on_init(Symbol a) override;
  PolicyStep on_fork(Symbol a, Symbol b) override;
  PolicyStep on_join(Symbol a, Symbol b) override;
  [[nodiscard]] std::string policy_name() const override {
    return "transitive-joins";
  }

  // Exposed for tests: does the current trace prefix derive a ≤ b?
  [[nodiscard]] bool may_join(Symbol a, Symbol b) const;

 private:
  bool initialized_ = false;
  std::unordered_map<Symbol, OrderedSet<Symbol>> joinable_;
  // joiners_[x] = { c : x ∈ joinable_[c] } (inverse of joinable_).
  std::unordered_map<Symbol, OrderedSet<Symbol>> joiners_;
};

// Known Joins monitor: knowledge is inherited from the spawner at fork
// time and extended only by the thread's own forks.
class KnownJoinsMonitor final : public JoinPolicyMonitor {
 public:
  PolicyStep on_init(Symbol a) override;
  PolicyStep on_fork(Symbol a, Symbol b) override;
  PolicyStep on_join(Symbol a, Symbol b) override;
  [[nodiscard]] std::string policy_name() const override {
    return "known-joins";
  }

  [[nodiscard]] bool knows(Symbol a, Symbol b) const;

 private:
  bool initialized_ = false;
  std::unordered_map<Symbol, OrderedSet<Symbol>> known_;
};

// Whole-trace validation verdict.
struct TraceVerdict {
  bool valid = true;
  std::size_t failing_index = 0;  // index into the trace, if invalid
  std::string reason;
};

// Runs `trace` through a fresh monitor of the given policy.
[[nodiscard]] TraceVerdict validate_trace(const Trace& trace,
                                          JoinPolicyMonitor& monitor);
[[nodiscard]] TraceVerdict check_transitive_joins(const Trace& trace);
[[nodiscard]] TraceVerdict check_known_joins(const Trace& trace);

}  // namespace gtdl
