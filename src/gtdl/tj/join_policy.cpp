#include "gtdl/tj/join_policy.hpp"

namespace gtdl {

namespace {

std::string describe(Symbol a, std::string_view verb, Symbol b) {
  std::string out(a.view());
  out += ' ';
  out += verb;
  out += ' ';
  out += b.view();
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Transitive Joins

PolicyStep TransitiveJoinsMonitor::on_init(Symbol a) {
  if (initialized_) return PolicyStep::reject("duplicate init action");
  initialized_ = true;
  joinable_.emplace(a, OrderedSet<Symbol>{});
  joiners_.emplace(a, OrderedSet<Symbol>{});
  return PolicyStep::accept();
}

PolicyStep TransitiveJoinsMonitor::on_fork(Symbol a, Symbol b) {
  if (!initialized_) return PolicyStep::reject("fork before init");
  auto parent = joinable_.find(a);
  if (parent == joinable_.end()) {
    return PolicyStep::reject("fork by unknown thread " + a.str());
  }
  if (joinable_.find(b) != joinable_.end()) {
    return PolicyStep::reject("fork of existing thread " + b.str());
  }

  // TJ-RIGHT: b inherits a's permissions as of this fork.
  const OrderedSet<Symbol> inherited = parent->second;
  joinable_.emplace(b, inherited);
  joiners_.emplace(b, OrderedSet<Symbol>{});
  for (Symbol target : inherited) joiners_.at(target).insert(b);

  // TJ-LEFT (with the reflexive premise c ⊑ a): a itself and every thread
  // that may join a gains permission to join b.
  OrderedSet<Symbol>& b_joiners = joiners_.at(b);
  joinable_.at(a).insert(b);
  b_joiners.insert(a);
  for (Symbol c : joiners_.at(a)) {
    joinable_.at(c).insert(b);
    b_joiners.insert(c);
  }
  return PolicyStep::accept();
}

PolicyStep TransitiveJoinsMonitor::on_join(Symbol a, Symbol b) {
  if (!initialized_) return PolicyStep::reject("join before init");
  if (!may_join(a, b)) {
    return PolicyStep::reject("transitive joins violation: " +
                              describe(a, "may not join", b));
  }
  return PolicyStep::accept();
}

bool TransitiveJoinsMonitor::may_join(Symbol a, Symbol b) const {
  auto it = joinable_.find(a);
  return it != joinable_.end() && it->second.contains(b);
}

// ---------------------------------------------------------------------------
// Known Joins

PolicyStep KnownJoinsMonitor::on_init(Symbol a) {
  if (initialized_) return PolicyStep::reject("duplicate init action");
  initialized_ = true;
  known_.emplace(a, OrderedSet<Symbol>{});
  return PolicyStep::accept();
}

PolicyStep KnownJoinsMonitor::on_fork(Symbol a, Symbol b) {
  if (!initialized_) return PolicyStep::reject("fork before init");
  auto parent = known_.find(a);
  if (parent == known_.end()) {
    return PolicyStep::reject("fork by unknown thread " + a.str());
  }
  if (known_.find(b) != known_.end()) {
    return PolicyStep::reject("fork of existing thread " + b.str());
  }
  // The child knows what its spawner knew; the spawner learns the child.
  known_.emplace(b, parent->second);
  known_.at(a).insert(b);
  return PolicyStep::accept();
}

PolicyStep KnownJoinsMonitor::on_join(Symbol a, Symbol b) {
  if (!initialized_) return PolicyStep::reject("join before init");
  if (!knows(a, b)) {
    return PolicyStep::reject("known joins violation: " +
                              describe(a, "does not know", b));
  }
  return PolicyStep::accept();
}

bool KnownJoinsMonitor::knows(Symbol a, Symbol b) const {
  auto it = known_.find(a);
  return it != known_.end() && it->second.contains(b);
}

// ---------------------------------------------------------------------------
// Whole-trace validation

TraceVerdict validate_trace(const Trace& trace, JoinPolicyMonitor& monitor) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Action& action = trace[i];
    PolicyStep step;
    switch (action.kind) {
      case ActionKind::kInit:
        step = monitor.on_init(action.thread);
        break;
      case ActionKind::kFork:
        step = monitor.on_fork(action.thread, action.target);
        break;
      case ActionKind::kJoin:
        step = monitor.on_join(action.thread, action.target);
        break;
    }
    if (!step.ok()) {
      return TraceVerdict{false, i,
                          step.reason + " (at action " + to_string(action) +
                              ")"};
    }
  }
  return TraceVerdict{};
}

TraceVerdict check_transitive_joins(const Trace& trace) {
  TransitiveJoinsMonitor monitor;
  return validate_trace(trace, monitor);
}

TraceVerdict check_known_joins(const Trace& trace) {
  KnownJoinsMonitor monitor;
  return validate_trace(trace, monitor);
}

}  // namespace gtdl
