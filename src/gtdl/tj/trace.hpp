// Program traces (paper §4.2).
//
// A trace abstracts a program execution as a sequence of actions:
//   init(a)     — initialization of the main thread a
//   fork(a, b)  — thread a spawning thread b
//   join(a, b)  — thread a touching (joining) thread b
//
// Traces are the interface between executions and the dynamic
// deadlock-avoidance policies (Transitive Joins, Known Joins). They are
// produced in two ways in this code base: from ground graphs via the
// `g ~>_a t` judgment of Fig. 6 (trace_of_graph), and by the FutLang
// interpreter / futures runtime during execution.

#pragma once

#include <string>
#include <vector>

#include "gtdl/graph/graph_expr.hpp"
#include "gtdl/support/symbol.hpp"

namespace gtdl {

enum class ActionKind : unsigned char { kInit, kFork, kJoin };

struct Action {
  ActionKind kind = ActionKind::kInit;
  Symbol thread;  // the acting thread (a)
  Symbol target;  // b, for fork/join; invalid for init

  static Action init(Symbol a) { return {ActionKind::kInit, a, Symbol{}}; }
  static Action fork(Symbol a, Symbol b) { return {ActionKind::kFork, a, b}; }
  static Action join(Symbol a, Symbol b) { return {ActionKind::kJoin, a, b}; }

  friend bool operator==(const Action&, const Action&) = default;
};

using Trace = std::vector<Action>;

// Renders e.g. "init(main); fork(main,u1); join(main,u1)".
[[nodiscard]] std::string to_string(const Trace& trace);
[[nodiscard]] std::string to_string(const Action& action);

// The `g ~>_a t` judgment of Fig. 6: serializes a ground graph into the
// trace of the execution it records, with `main` naming the main thread.
// Per the paper, the result does NOT include the leading init action; use
// trace_with_init for a (potentially) valid trace.
[[nodiscard]] Trace trace_of_graph(const GraphExpr& g, Symbol main);

// init(main); trace_of_graph(g, main) — the form Theorem 1 judges.
[[nodiscard]] Trace trace_with_init(const GraphExpr& g, Symbol main);

}  // namespace gtdl
