#!/usr/bin/env python3
"""Run the curated fuzz-farm reproducers through the normal fdlc driver.

Every program in ``examples/programs/fuzz/`` was found (or hand-pinned)
by the differential fuzzing farm and carries its recorded verdict in two
header comments::

    # fuzz-class: <sound_free|true_positive|imprecise|...>
    # fdlc-exit: <expected fdlc exit code>

This script replays each file through ``fdlc <file>`` — the ordinary
corpus driver, not the farm — and fails if any exit code drifts from the
recorded one. That keeps the shrunk regression seeds honest: a detector
change that silently flips a reproducer's verdict fails CI here even if
the farm itself happens not to regenerate that program.

Usage: scripts/check_fuzz_corpus.py path/to/fdlc [path/to/fuzz/dir]
"""

import re
import subprocess
import sys
from pathlib import Path

CLASS_RE = re.compile(r"^# fuzz-class:\s*(\S+)", re.MULTILINE)
EXIT_RE = re.compile(r"^# fdlc-exit:\s*(\d+)", re.MULTILINE)


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    fdlc = Path(sys.argv[1]).resolve()
    corpus = Path(
        sys.argv[2]
        if len(sys.argv) > 2
        else Path(__file__).resolve().parent.parent
        / "examples"
        / "programs"
        / "fuzz"
    )
    programs = sorted(corpus.glob("*.fut"))
    if not programs:
        print(f"{corpus}: no .fut programs found", file=sys.stderr)
        return 1

    failures = 0
    for program in programs:
        text = program.read_text(encoding="utf-8")
        klass = CLASS_RE.search(text)
        expected = EXIT_RE.search(text)
        if not klass or not expected:
            print(f"{program.name}: missing '# fuzz-class:' or "
                  f"'# fdlc-exit:' header", file=sys.stderr)
            failures += 1
            continue
        proc = subprocess.run(
            [str(fdlc), str(program)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != int(expected.group(1)):
            failures += 1
            print(f"{program.name} [{klass.group(1)}]: recorded fdlc exit "
                  f"{expected.group(1)}, got {proc.returncode}",
                  file=sys.stderr)
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
        else:
            print(f"{program.name}: {klass.group(1)} "
                  f"(exit {proc.returncode}) ok")

    if failures:
        print(f"{failures}/{len(programs)} reproducers drifted",
              file=sys.stderr)
        return 1
    print(f"all {len(programs)} fuzz reproducers keep their recorded "
          f"verdicts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
