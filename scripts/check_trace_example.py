#!/usr/bin/env python3
"""Execute docs/TRACE_FORMAT.md's worked example verbatim and diff it.

The spec's worked example carries three shard files (fenced ``json``
blocks introduced by ``File `dump.K.json`:``) and a ``console``
transcript of ingesting them. This script writes the shards to a temp
directory, runs the documented ``fdlc --ingest`` command against them,
and fails if stdout or the exit code differ from the transcript — so
the normative document cannot drift from the implementation.

Usage: scripts/check_trace_example.py path/to/fdlc [path/to/TRACE_FORMAT.md]
"""

import re
import subprocess
import sys
import tempfile
from pathlib import Path

SHARD_RE = re.compile(
    r"File `(dump\.\d+\.json)`:\s*\n\n```json\n(.*?)```", re.DOTALL
)
CONSOLE_RE = re.compile(
    r"```console\n\$ fdlc --ingest '([^']+)'\n(.*?)\$ echo \$\?\n(\d+)\n```",
    re.DOTALL,
)


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    fdlc = Path(sys.argv[1]).resolve()
    doc = Path(
        sys.argv[2]
        if len(sys.argv) > 2
        else Path(__file__).resolve().parent.parent / "docs" / "TRACE_FORMAT.md"
    )
    text = doc.read_text(encoding="utf-8")

    shards = SHARD_RE.findall(text)
    if len(shards) != 3:
        print(f"{doc}: expected 3 worked-example shard blocks, found "
              f"{len(shards)}", file=sys.stderr)
        return 1
    transcript = CONSOLE_RE.search(text)
    if not transcript:
        print(f"{doc}: no console transcript block found", file=sys.stderr)
        return 1
    pattern, expected_out, expected_exit = transcript.groups()

    with tempfile.TemporaryDirectory(prefix="gtdl-trace-example-") as tmp:
        for name, body in shards:
            (Path(tmp) / name).write_text(body, encoding="utf-8")
        proc = subprocess.run(
            [str(fdlc), "--ingest", pattern],
            cwd=tmp,
            capture_output=True,
            text=True,
        )

    ok = True
    if proc.stdout != expected_out:
        ok = False
        print("worked example output drifted from the implementation:",
              file=sys.stderr)
        print("--- documented ---", file=sys.stderr)
        sys.stderr.write(expected_out)
        print("--- actual ---", file=sys.stderr)
        sys.stderr.write(proc.stdout)
    if proc.returncode != int(expected_exit):
        ok = False
        print(f"worked example exit code drifted: documented {expected_exit}, "
              f"actual {proc.returncode}", file=sys.stderr)
    if ok:
        print(f"{doc.name}: worked example verified against {fdlc.name} "
              f"(exit {proc.returncode})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
