#!/usr/bin/env python3
"""Reference client for the fdld analysis daemon (README "fdld").

Speaks the newline-delimited JSON protocol over fdld's unix-domain
socket: each command becomes one flat request line (string and
non-negative-integer values only; corpus files ride as repeated
``"file"`` keys), and the daemon's one-line JSON response is printed to
stdout verbatim. Stdlib only — no dependencies beyond python3.

Usage:
  scripts/fdld_client.py SOCKET ping
  scripts/fdld_client.py SOCKET submit FILE... [--budget-steps N]
      [--budget-mb N] [--timeout-ms N] [--max-iters N] [--unrolls N]
      [--baseline] [--no-new-push]
  scripts/fdld_client.py SOCKET reanalyze FILE... [same options]
  scripts/fdld_client.py SOCKET stats
  scripts/fdld_client.py SOCKET snapshot PATH
  scripts/fdld_client.py SOCKET shutdown

Exit code: the response's "exit_code" field when present (the corpus
verdict: 0 deadlock-free, 1 possible deadlock, 2 error, 3 budget
exhausted); otherwise 0 when the response says ``"ok":true`` and 1 when
it does not or the transport fails.
"""

import json
import socket
import sys

INT_OPTIONS = {
    "--budget-steps": "budget_steps",
    "--budget-mb": "budget_mb",
    "--timeout-ms": "timeout_ms",
    "--max-iters": "max_iters",
    "--unrolls": "unrolls",
}
FLAG_OPTIONS = {
    # The wire protocol carries daemon-default overrides as 0/1 ints.
    "--baseline": ("baseline", 1),
    "--no-new-push": ("new_push", 0),
}


def encode_request(op, files, options):
    """Flat one-line JSON with repeated "file" keys (dict won't do)."""
    parts = ['"op":' + json.dumps(op)]
    for path in files:
        parts.append('"file":' + json.dumps(path))
    for key, value in options.items():
        parts.append(json.dumps(key) + ":" + json.dumps(value))
    return "{" + ",".join(parts) + "}\n"


def parse_command(argv):
    if len(argv) < 2:
        raise SystemExit(__doc__.strip())
    sock_path, op = argv[0], argv[1]
    files = []
    options = {}
    rest = argv[2:]
    if op in ("submit", "reanalyze"):
        i = 0
        while i < len(rest):
            arg = rest[i]
            if arg in INT_OPTIONS:
                if i + 1 >= len(rest):
                    raise SystemExit(f"fdld_client: missing value for {arg}")
                options[INT_OPTIONS[arg]] = int(rest[i + 1])
                i += 2
            elif arg in FLAG_OPTIONS:
                key, value = FLAG_OPTIONS[arg]
                options[key] = value
                i += 1
            else:
                files.append(arg)
                i += 1
        if not files:
            raise SystemExit(f"fdld_client: {op} needs at least one file")
    elif op == "snapshot":
        if len(rest) != 1:
            raise SystemExit("fdld_client: snapshot needs exactly one path")
        options["path"] = rest[0]
    elif op in ("ping", "stats", "shutdown"):
        if rest:
            raise SystemExit(f"fdld_client: {op} takes no arguments")
    else:
        raise SystemExit(f"fdld_client: unknown op '{op}'")
    return sock_path, op, files, options


def main(argv):
    sock_path, op, files, options = parse_command(argv)
    request = encode_request(op, files, options)
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        try:
            sock.connect(sock_path)
        except OSError as err:
            print(f"fdld_client: cannot connect to {sock_path}: {err}",
                  file=sys.stderr)
            return 1
        sock.sendall(request.encode())
        chunks = []
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            chunks.append(chunk)
            if b"\n" in chunk:
                break
    line = b"".join(chunks).split(b"\n", 1)[0].decode()
    if not line:
        print("fdld_client: empty response", file=sys.stderr)
        return 1
    print(line)
    response = json.loads(line)
    if "exit_code" in response:
        return int(response["exit_code"])
    return 0 if response.get("ok") else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
