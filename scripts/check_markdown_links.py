#!/usr/bin/env python3
"""Fail CI when an intra-repo markdown link points at a missing target.

Checks every ``[text](target)`` and ``[text]: target`` reference in the
repo's markdown files:

  * relative file links must resolve to an existing file or directory
    (relative to the file containing the link);
  * fragment-only links (``#section``) must match a heading in the same
    file; ``file.md#section`` must match a heading in the target file;
  * external links (http/https/mailto) are NOT fetched — this gate is
    about keeping the repo's own cross-references honest, not about the
    health of the internet.

Usage: scripts/check_markdown_links.py [root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
REFDEF_RE = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

SKIP_DIRS = {".git", "build", "node_modules", ".claude"}


def heading_anchor(text):
    """GitHub's anchor algorithm, close enough for our headings."""
    text = re.sub(r"[`*_]", "", text.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def anchors_of(path, cache={}):
    if path not in cache:
        try:
            with open(path, encoding="utf-8") as f:
                body = CODE_FENCE_RE.sub("", f.read())
        except OSError:
            cache[path] = set()
        else:
            cache[path] = {heading_anchor(m) for m in HEADING_RE.findall(body)}
    return cache[path]


def check_file(md_path, root):
    errors = []
    with open(md_path, encoding="utf-8") as f:
        raw = f.read()
    body = CODE_FENCE_RE.sub("", raw)
    targets = (
        LINK_RE.findall(body) + IMAGE_RE.findall(body) + REFDEF_RE.findall(body)
    )
    base = os.path.dirname(md_path)
    rel = os.path.relpath(md_path, root)
    for target in targets:
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("<"):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = os.path.normpath(os.path.join(base, path_part))
            if not os.path.exists(resolved):
                errors.append(f"{rel}: broken link '{target}' "
                              f"(no such file: {path_part})")
                continue
            anchor_file = resolved
        else:
            anchor_file = md_path
        if fragment and anchor_file.endswith(".md"):
            if heading_anchor(fragment) not in anchors_of(anchor_file):
                errors.append(f"{rel}: broken anchor '{target}' "
                              f"(no heading #{fragment})")
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    all_errors = []
    count = 0
    for md_path in sorted(markdown_files(root)):
        count += 1
        all_errors.extend(check_file(md_path, root))
    for error in all_errors:
        print(error, file=sys.stderr)
    print(f"checked {count} markdown files: "
          f"{len(all_errors)} broken intra-repo links")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
