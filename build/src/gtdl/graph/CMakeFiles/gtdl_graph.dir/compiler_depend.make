# Empty compiler generated dependencies file for gtdl_graph.
# This may be replaced when dependencies are built.
