file(REMOVE_RECURSE
  "libgtdl_graph.a"
)
