file(REMOVE_RECURSE
  "CMakeFiles/gtdl_graph.dir/graph.cpp.o"
  "CMakeFiles/gtdl_graph.dir/graph.cpp.o.d"
  "CMakeFiles/gtdl_graph.dir/graph_expr.cpp.o"
  "CMakeFiles/gtdl_graph.dir/graph_expr.cpp.o.d"
  "libgtdl_graph.a"
  "libgtdl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtdl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
