
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gtdl/graph/graph.cpp" "src/gtdl/graph/CMakeFiles/gtdl_graph.dir/graph.cpp.o" "gcc" "src/gtdl/graph/CMakeFiles/gtdl_graph.dir/graph.cpp.o.d"
  "/root/repo/src/gtdl/graph/graph_expr.cpp" "src/gtdl/graph/CMakeFiles/gtdl_graph.dir/graph_expr.cpp.o" "gcc" "src/gtdl/graph/CMakeFiles/gtdl_graph.dir/graph_expr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gtdl/support/CMakeFiles/gtdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
