# Empty dependencies file for gtdl_detect.
# This may be replaced when dependencies are built.
