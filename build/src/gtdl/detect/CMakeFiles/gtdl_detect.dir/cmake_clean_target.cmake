file(REMOVE_RECURSE
  "libgtdl_detect.a"
)
