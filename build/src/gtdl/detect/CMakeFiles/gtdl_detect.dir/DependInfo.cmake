
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gtdl/detect/counterexample.cpp" "src/gtdl/detect/CMakeFiles/gtdl_detect.dir/counterexample.cpp.o" "gcc" "src/gtdl/detect/CMakeFiles/gtdl_detect.dir/counterexample.cpp.o.d"
  "/root/repo/src/gtdl/detect/deadlock.cpp" "src/gtdl/detect/CMakeFiles/gtdl_detect.dir/deadlock.cpp.o" "gcc" "src/gtdl/detect/CMakeFiles/gtdl_detect.dir/deadlock.cpp.o.d"
  "/root/repo/src/gtdl/detect/gml_baseline.cpp" "src/gtdl/detect/CMakeFiles/gtdl_detect.dir/gml_baseline.cpp.o" "gcc" "src/gtdl/detect/CMakeFiles/gtdl_detect.dir/gml_baseline.cpp.o.d"
  "/root/repo/src/gtdl/detect/mhp.cpp" "src/gtdl/detect/CMakeFiles/gtdl_detect.dir/mhp.cpp.o" "gcc" "src/gtdl/detect/CMakeFiles/gtdl_detect.dir/mhp.cpp.o.d"
  "/root/repo/src/gtdl/detect/new_push.cpp" "src/gtdl/detect/CMakeFiles/gtdl_detect.dir/new_push.cpp.o" "gcc" "src/gtdl/detect/CMakeFiles/gtdl_detect.dir/new_push.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gtdl/support/CMakeFiles/gtdl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/gtdl/graph/CMakeFiles/gtdl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
