file(REMOVE_RECURSE
  "CMakeFiles/gtdl_detect.dir/counterexample.cpp.o"
  "CMakeFiles/gtdl_detect.dir/counterexample.cpp.o.d"
  "CMakeFiles/gtdl_detect.dir/deadlock.cpp.o"
  "CMakeFiles/gtdl_detect.dir/deadlock.cpp.o.d"
  "CMakeFiles/gtdl_detect.dir/gml_baseline.cpp.o"
  "CMakeFiles/gtdl_detect.dir/gml_baseline.cpp.o.d"
  "CMakeFiles/gtdl_detect.dir/mhp.cpp.o"
  "CMakeFiles/gtdl_detect.dir/mhp.cpp.o.d"
  "CMakeFiles/gtdl_detect.dir/new_push.cpp.o"
  "CMakeFiles/gtdl_detect.dir/new_push.cpp.o.d"
  "libgtdl_detect.a"
  "libgtdl_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtdl_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
