# CMake generated Testfile for 
# Source directory: /root/repo/src/gtdl/detect
# Build directory: /root/repo/build/src/gtdl/detect
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
