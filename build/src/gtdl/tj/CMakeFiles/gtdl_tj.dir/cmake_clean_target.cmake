file(REMOVE_RECURSE
  "libgtdl_tj.a"
)
