file(REMOVE_RECURSE
  "CMakeFiles/gtdl_tj.dir/join_policy.cpp.o"
  "CMakeFiles/gtdl_tj.dir/join_policy.cpp.o.d"
  "CMakeFiles/gtdl_tj.dir/trace.cpp.o"
  "CMakeFiles/gtdl_tj.dir/trace.cpp.o.d"
  "libgtdl_tj.a"
  "libgtdl_tj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtdl_tj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
