
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gtdl/tj/join_policy.cpp" "src/gtdl/tj/CMakeFiles/gtdl_tj.dir/join_policy.cpp.o" "gcc" "src/gtdl/tj/CMakeFiles/gtdl_tj.dir/join_policy.cpp.o.d"
  "/root/repo/src/gtdl/tj/trace.cpp" "src/gtdl/tj/CMakeFiles/gtdl_tj.dir/trace.cpp.o" "gcc" "src/gtdl/tj/CMakeFiles/gtdl_tj.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gtdl/support/CMakeFiles/gtdl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/gtdl/graph/CMakeFiles/gtdl_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
