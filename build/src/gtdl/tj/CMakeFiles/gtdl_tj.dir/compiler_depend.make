# Empty compiler generated dependencies file for gtdl_tj.
# This may be replaced when dependencies are built.
