file(REMOVE_RECURSE
  "libgtdl_frontend.a"
)
