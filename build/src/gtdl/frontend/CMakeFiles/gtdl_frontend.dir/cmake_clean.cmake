file(REMOVE_RECURSE
  "CMakeFiles/gtdl_frontend.dir/driver.cpp.o"
  "CMakeFiles/gtdl_frontend.dir/driver.cpp.o.d"
  "CMakeFiles/gtdl_frontend.dir/infer.cpp.o"
  "CMakeFiles/gtdl_frontend.dir/infer.cpp.o.d"
  "CMakeFiles/gtdl_frontend.dir/interp.cpp.o"
  "CMakeFiles/gtdl_frontend.dir/interp.cpp.o.d"
  "CMakeFiles/gtdl_frontend.dir/parser.cpp.o"
  "CMakeFiles/gtdl_frontend.dir/parser.cpp.o.d"
  "CMakeFiles/gtdl_frontend.dir/typecheck.cpp.o"
  "CMakeFiles/gtdl_frontend.dir/typecheck.cpp.o.d"
  "CMakeFiles/gtdl_frontend.dir/types.cpp.o"
  "CMakeFiles/gtdl_frontend.dir/types.cpp.o.d"
  "libgtdl_frontend.a"
  "libgtdl_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtdl_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
