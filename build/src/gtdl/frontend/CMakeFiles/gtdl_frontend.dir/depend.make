# Empty dependencies file for gtdl_frontend.
# This may be replaced when dependencies are built.
