file(REMOVE_RECURSE
  "CMakeFiles/fdlc.dir/fdlc_main.cpp.o"
  "CMakeFiles/fdlc.dir/fdlc_main.cpp.o.d"
  "fdlc"
  "fdlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
