# Empty dependencies file for fdlc.
# This may be replaced when dependencies are built.
