# CMake generated Testfile for 
# Source directory: /root/repo/src/gtdl/mml
# Build directory: /root/repo/build/src/gtdl/mml
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
