file(REMOVE_RECURSE
  "CMakeFiles/gtdl_mml.dir/driver.cpp.o"
  "CMakeFiles/gtdl_mml.dir/driver.cpp.o.d"
  "CMakeFiles/gtdl_mml.dir/infer.cpp.o"
  "CMakeFiles/gtdl_mml.dir/infer.cpp.o.d"
  "CMakeFiles/gtdl_mml.dir/parser.cpp.o"
  "CMakeFiles/gtdl_mml.dir/parser.cpp.o.d"
  "CMakeFiles/gtdl_mml.dir/typecheck.cpp.o"
  "CMakeFiles/gtdl_mml.dir/typecheck.cpp.o.d"
  "libgtdl_mml.a"
  "libgtdl_mml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtdl_mml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
