file(REMOVE_RECURSE
  "libgtdl_mml.a"
)
