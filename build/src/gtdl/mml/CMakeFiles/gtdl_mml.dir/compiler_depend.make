# Empty compiler generated dependencies file for gtdl_mml.
# This may be replaced when dependencies are built.
