
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gtdl/gtype/gtype.cpp" "src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/gtype.cpp.o" "gcc" "src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/gtype.cpp.o.d"
  "/root/repo/src/gtdl/gtype/kind.cpp" "src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/kind.cpp.o" "gcc" "src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/kind.cpp.o.d"
  "/root/repo/src/gtdl/gtype/normalize.cpp" "src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/normalize.cpp.o" "gcc" "src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/normalize.cpp.o.d"
  "/root/repo/src/gtdl/gtype/parse.cpp" "src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/parse.cpp.o" "gcc" "src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/parse.cpp.o.d"
  "/root/repo/src/gtdl/gtype/subst.cpp" "src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/subst.cpp.o" "gcc" "src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/subst.cpp.o.d"
  "/root/repo/src/gtdl/gtype/wellformed.cpp" "src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/wellformed.cpp.o" "gcc" "src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/wellformed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gtdl/support/CMakeFiles/gtdl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/gtdl/graph/CMakeFiles/gtdl_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
