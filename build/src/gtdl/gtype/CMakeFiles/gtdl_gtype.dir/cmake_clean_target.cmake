file(REMOVE_RECURSE
  "libgtdl_gtype.a"
)
