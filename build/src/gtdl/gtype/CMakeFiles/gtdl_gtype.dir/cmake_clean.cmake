file(REMOVE_RECURSE
  "CMakeFiles/gtdl_gtype.dir/gtype.cpp.o"
  "CMakeFiles/gtdl_gtype.dir/gtype.cpp.o.d"
  "CMakeFiles/gtdl_gtype.dir/kind.cpp.o"
  "CMakeFiles/gtdl_gtype.dir/kind.cpp.o.d"
  "CMakeFiles/gtdl_gtype.dir/normalize.cpp.o"
  "CMakeFiles/gtdl_gtype.dir/normalize.cpp.o.d"
  "CMakeFiles/gtdl_gtype.dir/parse.cpp.o"
  "CMakeFiles/gtdl_gtype.dir/parse.cpp.o.d"
  "CMakeFiles/gtdl_gtype.dir/subst.cpp.o"
  "CMakeFiles/gtdl_gtype.dir/subst.cpp.o.d"
  "CMakeFiles/gtdl_gtype.dir/wellformed.cpp.o"
  "CMakeFiles/gtdl_gtype.dir/wellformed.cpp.o.d"
  "libgtdl_gtype.a"
  "libgtdl_gtype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtdl_gtype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
