# Empty dependencies file for gtdl_gtype.
# This may be replaced when dependencies are built.
