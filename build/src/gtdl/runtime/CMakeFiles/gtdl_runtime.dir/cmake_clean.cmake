file(REMOVE_RECURSE
  "CMakeFiles/gtdl_runtime.dir/futures.cpp.o"
  "CMakeFiles/gtdl_runtime.dir/futures.cpp.o.d"
  "libgtdl_runtime.a"
  "libgtdl_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtdl_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
