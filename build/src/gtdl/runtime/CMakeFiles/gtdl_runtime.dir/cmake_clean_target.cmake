file(REMOVE_RECURSE
  "libgtdl_runtime.a"
)
