# Empty dependencies file for gtdl_runtime.
# This may be replaced when dependencies are built.
