# Empty compiler generated dependencies file for gtdl_support.
# This may be replaced when dependencies are built.
