file(REMOVE_RECURSE
  "libgtdl_support.a"
)
