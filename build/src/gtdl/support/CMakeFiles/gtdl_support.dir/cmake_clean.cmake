file(REMOVE_RECURSE
  "CMakeFiles/gtdl_support.dir/diagnostics.cpp.o"
  "CMakeFiles/gtdl_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/gtdl_support.dir/string_util.cpp.o"
  "CMakeFiles/gtdl_support.dir/string_util.cpp.o.d"
  "CMakeFiles/gtdl_support.dir/symbol.cpp.o"
  "CMakeFiles/gtdl_support.dir/symbol.cpp.o.d"
  "libgtdl_support.a"
  "libgtdl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtdl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
