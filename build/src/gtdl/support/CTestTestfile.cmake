# CMake generated Testfile for 
# Source directory: /root/repo/src/gtdl/support
# Build directory: /root/repo/build/src/gtdl/support
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
