# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("gtdl/support")
subdirs("gtdl/graph")
subdirs("gtdl/tj")
subdirs("gtdl/gtype")
subdirs("gtdl/detect")
subdirs("gtdl/frontend")
subdirs("gtdl/mml")
subdirs("gtdl/runtime")
subdirs("gtdl/cli")
