file(REMOVE_RECURSE
  "CMakeFiles/bench_normalization.dir/bench_normalization.cpp.o"
  "CMakeFiles/bench_normalization.dir/bench_normalization.cpp.o.d"
  "bench_normalization"
  "bench_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
