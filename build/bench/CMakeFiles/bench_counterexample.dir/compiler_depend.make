# Empty compiler generated dependencies file for bench_counterexample.
# This may be replaced when dependencies are built.
