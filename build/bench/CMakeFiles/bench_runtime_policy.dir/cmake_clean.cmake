file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime_policy.dir/bench_runtime_policy.cpp.o"
  "CMakeFiles/bench_runtime_policy.dir/bench_runtime_policy.cpp.o.d"
  "bench_runtime_policy"
  "bench_runtime_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
