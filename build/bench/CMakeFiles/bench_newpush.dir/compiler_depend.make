# Empty compiler generated dependencies file for bench_newpush.
# This may be replaced when dependencies are built.
