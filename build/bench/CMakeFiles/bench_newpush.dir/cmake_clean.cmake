file(REMOVE_RECURSE
  "CMakeFiles/bench_newpush.dir/bench_newpush.cpp.o"
  "CMakeFiles/bench_newpush.dir/bench_newpush.cpp.o.d"
  "bench_newpush"
  "bench_newpush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_newpush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
