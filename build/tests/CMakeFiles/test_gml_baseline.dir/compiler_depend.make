# Empty compiler generated dependencies file for test_gml_baseline.
# This may be replaced when dependencies are built.
