file(REMOVE_RECURSE
  "CMakeFiles/test_gml_baseline.dir/test_gml_baseline.cpp.o"
  "CMakeFiles/test_gml_baseline.dir/test_gml_baseline.cpp.o.d"
  "test_gml_baseline"
  "test_gml_baseline.pdb"
  "test_gml_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gml_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
