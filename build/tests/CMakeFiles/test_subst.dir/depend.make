# Empty dependencies file for test_subst.
# This may be replaced when dependencies are built.
