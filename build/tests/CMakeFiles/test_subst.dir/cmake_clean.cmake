file(REMOVE_RECURSE
  "CMakeFiles/test_subst.dir/test_subst.cpp.o"
  "CMakeFiles/test_subst.dir/test_subst.cpp.o.d"
  "test_subst"
  "test_subst.pdb"
  "test_subst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
