
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_roundtrip.cpp" "tests/CMakeFiles/test_roundtrip.dir/test_roundtrip.cpp.o" "gcc" "tests/CMakeFiles/test_roundtrip.dir/test_roundtrip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gtdl/detect/CMakeFiles/gtdl_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/gtdl/mml/CMakeFiles/gtdl_mml.dir/DependInfo.cmake"
  "/root/repo/build/src/gtdl/frontend/CMakeFiles/gtdl_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/gtdl/gtype/CMakeFiles/gtdl_gtype.dir/DependInfo.cmake"
  "/root/repo/build/src/gtdl/runtime/CMakeFiles/gtdl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gtdl/tj/CMakeFiles/gtdl_tj.dir/DependInfo.cmake"
  "/root/repo/build/src/gtdl/graph/CMakeFiles/gtdl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/gtdl/support/CMakeFiles/gtdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
