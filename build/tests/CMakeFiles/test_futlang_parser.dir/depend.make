# Empty dependencies file for test_futlang_parser.
# This may be replaced when dependencies are built.
