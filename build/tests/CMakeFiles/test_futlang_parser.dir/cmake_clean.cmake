file(REMOVE_RECURSE
  "CMakeFiles/test_futlang_parser.dir/test_futlang_parser.cpp.o"
  "CMakeFiles/test_futlang_parser.dir/test_futlang_parser.cpp.o.d"
  "test_futlang_parser"
  "test_futlang_parser.pdb"
  "test_futlang_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_futlang_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
