# Empty dependencies file for test_wellformed.
# This may be replaced when dependencies are built.
