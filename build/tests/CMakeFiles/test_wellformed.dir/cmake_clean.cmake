file(REMOVE_RECURSE
  "CMakeFiles/test_wellformed.dir/test_wellformed.cpp.o"
  "CMakeFiles/test_wellformed.dir/test_wellformed.cpp.o.d"
  "test_wellformed"
  "test_wellformed.pdb"
  "test_wellformed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wellformed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
