# Empty dependencies file for test_mhp.
# This may be replaced when dependencies are built.
