file(REMOVE_RECURSE
  "CMakeFiles/test_mhp.dir/test_mhp.cpp.o"
  "CMakeFiles/test_mhp.dir/test_mhp.cpp.o.d"
  "test_mhp"
  "test_mhp.pdb"
  "test_mhp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mhp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
