file(REMOVE_RECURSE
  "CMakeFiles/test_new_push.dir/test_new_push.cpp.o"
  "CMakeFiles/test_new_push.dir/test_new_push.cpp.o.d"
  "test_new_push"
  "test_new_push.pdb"
  "test_new_push[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_new_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
