# Empty compiler generated dependencies file for test_new_push.
# This may be replaced when dependencies are built.
