file(REMOVE_RECURSE
  "CMakeFiles/test_counterexample.dir/test_counterexample.cpp.o"
  "CMakeFiles/test_counterexample.dir/test_counterexample.cpp.o.d"
  "test_counterexample"
  "test_counterexample.pdb"
  "test_counterexample[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counterexample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
