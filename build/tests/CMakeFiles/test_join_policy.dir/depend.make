# Empty dependencies file for test_join_policy.
# This may be replaced when dependencies are built.
