file(REMOVE_RECURSE
  "CMakeFiles/test_join_policy.dir/test_join_policy.cpp.o"
  "CMakeFiles/test_join_policy.dir/test_join_policy.cpp.o.d"
  "test_join_policy"
  "test_join_policy.pdb"
  "test_join_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_join_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
