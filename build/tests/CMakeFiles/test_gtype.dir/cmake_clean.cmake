file(REMOVE_RECURSE
  "CMakeFiles/test_gtype.dir/test_gtype.cpp.o"
  "CMakeFiles/test_gtype.dir/test_gtype.cpp.o.d"
  "test_gtype"
  "test_gtype.pdb"
  "test_gtype[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gtype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
