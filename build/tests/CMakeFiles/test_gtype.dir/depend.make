# Empty dependencies file for test_gtype.
# This may be replaced when dependencies are built.
