file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_fuzz.dir/test_e2e_fuzz.cpp.o"
  "CMakeFiles/test_e2e_fuzz.dir/test_e2e_fuzz.cpp.o.d"
  "test_e2e_fuzz"
  "test_e2e_fuzz.pdb"
  "test_e2e_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
