# Empty dependencies file for test_e2e_fuzz.
# This may be replaced when dependencies are built.
