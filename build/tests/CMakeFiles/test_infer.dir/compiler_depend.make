# Empty compiler generated dependencies file for test_infer.
# This may be replaced when dependencies are built.
