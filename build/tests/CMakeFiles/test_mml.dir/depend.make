# Empty dependencies file for test_mml.
# This may be replaced when dependencies are built.
