file(REMOVE_RECURSE
  "CMakeFiles/test_mml.dir/test_mml.cpp.o"
  "CMakeFiles/test_mml.dir/test_mml.cpp.o.d"
  "test_mml"
  "test_mml.pdb"
  "test_mml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
