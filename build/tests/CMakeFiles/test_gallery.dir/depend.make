# Empty dependencies file for test_gallery.
# This may be replaced when dependencies are built.
