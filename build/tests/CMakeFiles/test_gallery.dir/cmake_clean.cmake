file(REMOVE_RECURSE
  "CMakeFiles/test_gallery.dir/test_gallery.cpp.o"
  "CMakeFiles/test_gallery.dir/test_gallery.cpp.o.d"
  "test_gallery"
  "test_gallery.pdb"
  "test_gallery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
