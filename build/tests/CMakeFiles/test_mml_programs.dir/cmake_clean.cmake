file(REMOVE_RECURSE
  "CMakeFiles/test_mml_programs.dir/test_mml_programs.cpp.o"
  "CMakeFiles/test_mml_programs.dir/test_mml_programs.cpp.o.d"
  "test_mml_programs"
  "test_mml_programs.pdb"
  "test_mml_programs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mml_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
