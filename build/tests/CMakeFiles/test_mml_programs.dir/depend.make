# Empty dependencies file for test_mml_programs.
# This may be replaced when dependencies are built.
