# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_join_policy[1]_include.cmake")
include("/root/repo/build/tests/test_gtype[1]_include.cmake")
include("/root/repo/build/tests/test_subst[1]_include.cmake")
include("/root/repo/build/tests/test_normalize[1]_include.cmake")
include("/root/repo/build/tests/test_wellformed[1]_include.cmake")
include("/root/repo/build/tests/test_deadlock[1]_include.cmake")
include("/root/repo/build/tests/test_new_push[1]_include.cmake")
include("/root/repo/build/tests/test_gml_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_counterexample[1]_include.cmake")
include("/root/repo/build/tests/test_futlang_parser[1]_include.cmake")
include("/root/repo/build/tests/test_typecheck[1]_include.cmake")
include("/root/repo/build/tests/test_infer[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_programs[1]_include.cmake")
include("/root/repo/build/tests/test_soundness[1]_include.cmake")
include("/root/repo/build/tests/test_mml[1]_include.cmake")
include("/root/repo/build/tests/test_mhp[1]_include.cmake")
include("/root/repo/build/tests/test_gallery[1]_include.cmake")
include("/root/repo/build/tests/test_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_stress[1]_include.cmake")
include("/root/repo/build/tests/test_e2e_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_mml_programs[1]_include.cmake")
