file(REMOVE_RECURSE
  "CMakeFiles/runtime_deadlock.dir/runtime_deadlock.cpp.o"
  "CMakeFiles/runtime_deadlock.dir/runtime_deadlock.cpp.o.d"
  "runtime_deadlock"
  "runtime_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
