# Empty compiler generated dependencies file for runtime_deadlock.
# This may be replaced when dependencies are built.
