file(REMOVE_RECURSE
  "CMakeFiles/language_agnostic.dir/language_agnostic.cpp.o"
  "CMakeFiles/language_agnostic.dir/language_agnostic.cpp.o.d"
  "language_agnostic"
  "language_agnostic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/language_agnostic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
