# Empty dependencies file for language_agnostic.
# This may be replaced when dependencies are built.
