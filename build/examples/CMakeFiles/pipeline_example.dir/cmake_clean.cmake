file(REMOVE_RECURSE
  "CMakeFiles/pipeline_example.dir/pipeline_example.cpp.o"
  "CMakeFiles/pipeline_example.dir/pipeline_example.cpp.o.d"
  "pipeline_example"
  "pipeline_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
