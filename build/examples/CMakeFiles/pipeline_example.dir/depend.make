# Empty dependencies file for pipeline_example.
# This may be replaced when dependencies are built.
