# Empty dependencies file for webserver_analysis.
# This may be replaced when dependencies are built.
