file(REMOVE_RECURSE
  "CMakeFiles/webserver_analysis.dir/webserver_analysis.cpp.o"
  "CMakeFiles/webserver_analysis.dir/webserver_analysis.cpp.o.d"
  "webserver_analysis"
  "webserver_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
