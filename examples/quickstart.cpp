// Quickstart: the three ways into the library.
//
//  1. Build a graph type with the C++ API (or parse its ASCII syntax) and
//     ask the deadlock-freedom kind system about it.
//  2. Compile a FutLang program: source -> graph type -> verdict.
//  3. Execute futures for real on the threaded runtime.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/gtype/parse.hpp"
#include "gtdl/runtime/futures.hpp"

int main() {
  using namespace gtdl;

  // --- 1. Graph types directly -------------------------------------------
  // νu. (•/u ⊕ ᵘ\): spawn a future, then touch it. Deadlock-free.
  const Symbol u = Symbol::intern("u");
  const GTypePtr good =
      gt::nu(u, gt::seq(gt::spawn(gt::empty(), u), gt::touch(u)));
  std::cout << "type A: " << to_string(good) << "\n  -> "
            << (check_deadlock_freedom(good).deadlock_free
                    ? "deadlock-free"
                    : "possible deadlock")
            << "\n";

  // The same thing from text — with the touch moved BEFORE the spawn.
  const GTypePtr bad = parse_gtype_or_throw("new u. ~u ; 1 / u");
  const DeadlockVerdict bad_verdict = check_deadlock_freedom(bad);
  std::cout << "type B: " << to_string(bad) << "\n  -> "
            << (bad_verdict.deadlock_free ? "deadlock-free"
                                          : "possible deadlock")
            << "\n" << bad_verdict.diags.render();

  // --- 2. A FutLang program ----------------------------------------------
  const char* source = R"(
    fun main() {
      let h = new_future[int]();
      spawn h { return 40 + 2; }
      print(int_to_string(touch(h)));
    }
  )";
  const CompiledProgram compiled = compile_futlang_or_throw(source);
  std::cout << "FutLang program graph type: "
            << to_string(compiled.inferred.program_gtype) << "\n  -> "
            << (check_deadlock_freedom(compiled.inferred.program_gtype)
                        .deadlock_free
                    ? "deadlock-free"
                    : "possible deadlock")
            << "\n";

  // --- 3. Real futures ------------------------------------------------------
  FutureRuntime rt;
  auto first = rt.new_future<int>("first");
  auto second = rt.new_future<int>("second");
  first.spawn([] { return 21; });
  second.spawn([first]() mutable { return first.touch() * 2; });
  std::cout << "runtime says: " << second.touch() << "\n";
  return 0;
}
