# Family + pipeline combined (ISSUE 6 example family).
#
# A worker family is spawned and fully joined before a staged pipeline
# post-processes the results: VecSpawn / TouchAll compose in sequence
# with Pipe. Deadlock-free.

fun main() {
  let fs = spawn_vec[int] 3 { return 2; }
  let n = length(touch_all(fs));
  print(concat("joined members: ", int_to_string(n)));
  pipeline {
    stage { print("post: normalize"); }
    stage { print("post: publish"); }
  }
}
