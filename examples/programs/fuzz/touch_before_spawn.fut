# fuzz-class: true_positive
# fdlc-exit: 1
# The canonical unsafe order: h0 is touched before anything spawns it,
# so the touch blocks forever. Static analysis rejects; every execution
# deadlocks.
fun main() {
  let h0 = new_future[int]();
  let v0 = touch(h0);
  spawn h0 { return 1; }
}
