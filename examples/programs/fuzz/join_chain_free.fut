# fuzz-class: sound_free
# fdlc-exit: 0
# Spawn-then-touch in dependency order: accepted statically and no
# execution can deadlock.
fun main() {
  let h0 = new_future[int]();
  let h1 = new_future[int]();
  spawn h0 { return 2; }
  spawn h1 { return touch(h0) + 1; }
  let v0 = touch(h1);
}
