# fuzz-class: true_positive
# fdlc-exit: 1
# The first pipeline stage touches a never-spawned handle; the whole
# pipeline (and main, which waits for the last stage) blocks behind it.
fun main() {
  let h0 = new_future[int]();
  pipeline {
    stage { let v0 = touch(h0); }
    stage { let v1 = 1; }
  }
}
