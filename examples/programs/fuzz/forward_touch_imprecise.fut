# fuzz-class: imprecise
# fdlc-exit: 1
# h0's body touches h1, whose spawn appears AFTER h0's. The analysis
# cannot prove the touch lands after the spawn and rejects; at runtime
# the touch of h0 forces h1's spawn to have happened first, so no
# execution deadlocks. Expected conservatism, kept here so the farm's
# precision accounting has a pinned example.
fun main() {
  let h0 = new_future[int]();
  let h1 = new_future[int]();
  spawn h0 { return touch(h1) + 1; }
  spawn h1 { return 7; }
  let v0 = touch(h0);
}
