# fuzz-class: true_positive
# fdlc-exit: 1
# Shrunk farm reproducer (misverdict self-test, seed 1, splitmix64-v2):
# every member of the family touches a scalar handle nothing spawns.
fun main() {
  let h3 = new_future[int]();
  let fs0 = spawn_vec[int] 1 {
  return touch(h3);
};
}
