# fuzz-class: true_positive
# fdlc-exit: 1
# The future is created and touched but no thread ever spawns it.
fun main() {
  let h0 = new_future[int]();
  let v0 = touch(h0);
}
