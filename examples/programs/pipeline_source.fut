# Pipeline fed by an external source future (ISSUE 6 example family).
#
# A future spawned BEFORE the pipeline may be touched inside any stage:
# the touch is justified because the spawn precedes the whole Pipe graph
# in sequence. Deadlock-free.

fun main() {
  let src = new_future[int]();
  spawn src { return 42; }
  pipeline {
    stage { print(concat("stage 1 reads ", int_to_string(touch(src)))); }
    stage { print("stage 2 done"); }
  }
}
