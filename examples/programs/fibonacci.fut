# Fibonacci (paper §5, example 1) — deadlock-free.
#
# Computes the 8th Fibonacci number with 8 future threads: thread k
# computes fib(k) and spawns thread k-1; threads 3..8 touch the previous
# TWO threads and sum their results.
#
# The thread structure is a descending spawn chain:
#
#   main -> t8 -> t7 -> ... -> t1
#
# so thread k's touch of thread k-2 is a *grandchild* join (k-2 was
# spawned by k-1, not by k). Transitive Joins permits it (k may join k-1,
# and k-1 spawned k-2, so permission propagates); Known Joins does NOT —
# k never "learns" about k-2. This is exactly the Table 1 separation:
# the program is deadlock-free, our analysis and TJ accept it, KJ
# rejects it.

fun fib_stage(k: int, out: future[int]) -> int {
  # Computes fib(k). Also responsible for spawning `out`, the thread
  # computing fib(k-1).
  if k <= 2 {
    # fib(1) = fib(2) = 1; the previous stage is also 1 (or unused).
    spawn out { return 1; }
    return 1;
  } else {
    let prev2 = new_future[int]();
    # The thread for fib(k-1) spawns, in turn, the thread for fib(k-2).
    spawn out { return fib_stage(k - 1, prev2); }
    # fib(k) = fib(k-1) + fib(k-2); the second touch is the grandchild
    # join that separates TJ from KJ.
    return touch(out) + touch(prev2);
  }
}

fun main() {
  let top = new_future[int]();
  let prev = new_future[int]();
  spawn top { return fib_stage(8, prev); }
  let f8 = touch(top);
  let f7 = touch(prev);
  print(concat("fib(8) = ", int_to_string(f8)));
  print(concat("fib(7) = ", int_to_string(f7)));
}
