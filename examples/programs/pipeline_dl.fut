# Deadlocking stage-skip pipeline (ISSUE 6 example family).
#
# Stage 1 touches `late`, but `late` is only spawned after the pipeline
# statement — which itself blocks on the last stage, which waits on
# stage 1. Nobody can make progress: the kind system rejects the Pipe
# graph, and the interpreter's deadlock detector fires at runtime.

fun main() {
  let late = new_future[int]();
  pipeline {
    stage { print(int_to_string(touch(late))); }
    stage { print("never reached"); }
  }
  spawn late { return 7; }
}
