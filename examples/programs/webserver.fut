# Webserver (paper §5, example 5) — deadlock-free.
#
# A simulated HTTP server in the same size class as GML's webserver
# example (~350 LoC). The concurrency structure exercises everything the
# analysis supports at once:
#
#   * an acceptor loop (recursive `serve`) that spawns one HANDLER future
#     per connection and touches it post-order, divide-and-conquer style;
#   * a per-request two-stage PIPELINE inside each handler
#     (parse -> render, the render future touching the parse future);
#   * a serialized LOGGER chain threaded through the acceptor's
#     parameters: each log future touches the previous one, so log
#     entries are totally ordered (the pipeline idiom again);
#   * a warm-cache prefetcher future touched lazily by the first handler
#     that needs it.
#
# Since FutLang has no real sockets, connections are synthetic request
# descriptors (ints) produced by a deterministic mixer — the substitution
# preserves the paper-relevant behavior, which is the future/touch
# structure, not the I/O.

# ---------------------------------------------------------------------------
# Small arithmetic helpers

fun imin(a: int, b: int) -> int {
  if a < b {
    return a;
  } else {
    return b;
  }
}

fun imax(a: int, b: int) -> int {
  if a < b {
    return b;
  } else {
    return a;
  }
}

fun clamp(x: int, lo: int, hi: int) -> int {
  return imax(lo, imin(x, hi));
}

# A tiny deterministic integer mixer (xorshift-ish, done with division
# and modulo since FutLang has no bit operations).
fun mix(x: int) -> int {
  let a = (x * 1103515245 + 12345) % 2147483647;
  let b = (a / 65536) + (a % 65536) * 31;
  return imax(b % 1000000, 0 - (b % 1000000));
}

# ---------------------------------------------------------------------------
# Request model. A request descriptor packs method, route and payload
# size into one int.

fun method_of(req: int) -> int {
  # 0 = GET, 1 = POST, 2 = PUT, 3 = DELETE
  return req % 4;
}

fun route_of(req: int) -> int {
  # 0 = /, 1 = /api/items, 2 = /api/items/:id, 3 = /static, 4 = /health
  return (req / 4) % 5;
}

fun payload_of(req: int) -> int {
  return clamp((req / 20) % 4096, 0, 4095);
}

fun method_name(m: int) -> string {
  if m == 0 {
    return "GET";
  } else if m == 1 {
    return "POST";
  } else if m == 2 {
    return "PUT";
  } else {
    return "DELETE";
  }
}

fun route_name(r: int) -> string {
  if r == 0 {
    return "/";
  } else if r == 1 {
    return "/api/items";
  } else if r == 2 {
    return "/api/items/:id";
  } else if r == 3 {
    return "/static/app.js";
  } else {
    return "/health";
  }
}

fun status_name(code: int) -> string {
  if code == 200 {
    return "200 OK";
  } else if code == 201 {
    return "201 Created";
  } else if code == 204 {
    return "204 No Content";
  } else if code == 404 {
    return "404 Not Found";
  } else if code == 405 {
    return "405 Method Not Allowed";
  } else {
    return "500 Internal Server Error";
  }
}

# ---------------------------------------------------------------------------
# Simulated work kernels. `checksum` stands in for CPU-bound parsing /
# templating work so handler futures do something measurable.

fun checksum(n: int, acc: int) -> int {
  if n == 0 {
    return acc % 65521;
  } else {
    return checksum(n - 1, (acc * 31 + n) % 65521);
  }
}

fun parse_request(req: int) -> int {
  # "Parses" the request: derives a validated form token from the raw
  # descriptor. A bad payload parses to a negative token.
  let work = clamp(payload_of(req) / 64, 1, 48);
  let token = checksum(work, req % 97);
  if payload_of(req) > 4000 {
    return 0 - token;
  } else {
    return token;
  }
}

fun render_page(route: int, token: int) -> int {
  # "Renders" a response body for the route; returns its size in bytes.
  if token < 0 {
    return 0;
  } else {
    let base = (route + 1) * 512;
    return base + checksum(clamp(token % 32, 1, 32), route);
  }
}

fun status_for(m: int, route: int, body_size: int) -> int {
  if body_size == 0 {
    return 500;
  } else if route == 4 {
    # /health accepts only GET.
    if m == 0 {
      return 204;
    } else {
      return 405;
    }
  } else if route == 2 && m == 3 {
    return 204;
  } else if m == 1 {
    return 201;
  } else if route == 3 && m != 0 {
    return 405;
  } else {
    return 200;
  }
}

# ---------------------------------------------------------------------------
# Handler: a two-stage parse -> render pipeline of futures per request.
# `warm` is the shared warm-cache future; handlers for /static touch it
# to reuse the precomputed asset bundle.

fun handle_request(req: int, warm: future[int]) -> int {
  let parsed = new_future[int]();
  spawn parsed { return parse_request(req); }

  let rendered = new_future[int]();
  spawn rendered {
    # The render stage waits for the parse stage: a pipelined touch.
    let token = touch(parsed);
    return render_page(route_of(req), token);
  }

  let size = touch(rendered);
  if route_of(req) == 3 {
    # Static assets come from the warm cache as well.
    let cached = touch(warm);
    return status_for(method_of(req), route_of(req), size + cached % 128);
  } else {
    return status_for(method_of(req), route_of(req), size);
  }
}

fun log_line(seq: int, req: int, status: int) -> string {
  let head = concat(method_name(method_of(req)), " ");
  let line = concat(head, route_name(route_of(req)));
  let with_status = concat(concat(line, " -> "), status_name(status));
  return concat(concat(concat("[", int_to_string(seq)), "] "), with_status);
}

# ---------------------------------------------------------------------------
# Acceptor loop. Spawns a handler per request and a logger future that
# touches the previous logger future (serializing the log), recurses on
# the remaining requests, then touches its handler post-order.
# Returns the number of 2xx responses.

fun serve(reqs: list[int], warm: future[int], log_prev: future[int],
          seq: int) -> int {
  if length(reqs) == 0 {
    # Drain the logger chain before shutting down.
    let entries = touch(log_prev);
    print(concat("log entries flushed: ", int_to_string(entries)));
    return 0;
  } else {
    let req = head(reqs);

    let handler = new_future[int]();
    spawn handler { return handle_request(req, warm); }

    let log_next = new_future[int]();
    spawn log_next {
      let count = touch(log_prev);
      let status = touch(handler);
      print(log_line(seq, req, status));
      return count + 1;
    }

    let rest = serve(tail(reqs), warm, log_next, seq + 1);
    let status = touch(handler);
    if status >= 200 && status < 300 {
      return rest + 1;
    } else {
      return rest;
    }
  }
}

# ---------------------------------------------------------------------------
# Synthetic connection source.

fun make_requests(n: int, seed: int) -> list[int] {
  if n == 0 {
    return nil;
  } else {
    return cons(mix(seed + n * 7919), make_requests(n - 1, seed));
  }
}

fun count_requests(reqs: list[int]) -> int {
  return length(reqs);
}

fun main() {
  print("gtdl-httpd: simulated webserver starting");

  # Warm the static-asset cache concurrently with request ingestion.
  let warm = new_future[int]();
  spawn warm { return checksum(64, 17); }

  let requests = make_requests(24, 1234);
  print(concat("accepted connections: ",
               int_to_string(count_requests(requests))));

  # Root of the logger chain.
  let log_root = new_future[int]();
  spawn log_root { return 0; }

  let ok = serve(requests, warm, log_root, 0);
  print(concat("2xx responses: ", int_to_string(ok)));
  print("gtdl-httpd: shutting down");
}
