# Deadlocking family variant (ISSUE 6 example family).
#
# Every member of the family touches `a`, but `a` is only spawned AFTER
# `touch_all` joins the family — so each member blocks forever on a
# future whose body can never start. The kind system rejects this
# (touching `a` inside the vec body is not justified), the GML baseline
# renders a concrete cycle witness through a family member, and the
# interpreter's quiescence detector reports the deadlock at runtime.

fun main() {
  let a = new_future[int]();
  let fs = spawn_vec[int] 2 { return touch(a); }
  let xs = touch_all(fs);
  spawn a { return 1; }
  print(int_to_string(length(xs)));
}
