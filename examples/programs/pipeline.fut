# Pipeline (paper §5, example 3) — GML's motivating example: a pipelined
# map over a list of inputs. Deadlock-free.
#
# Each list element gets a future thread that touches the previous
# stage's future and adds its own contribution; the recursion threads the
# "previous stage" handle through the parameter list, giving the classic
# pipelined-futures dependency structure (Blelloch & Reid-Miller style).

fun pipe(xs: list[int], prev: future[int]) -> int {
  if length(xs) == 0 {
    # Drain the pipeline: the last stage's value is the total.
    return touch(prev);
  } else {
    let next = new_future[int]();
    spawn next { return touch(prev) + head(xs); }
    return pipe(tail(xs), next);
  }
}

fun main() {
  let src = new_future[int]();
  spawn src { return 0; }
  let total = pipe(range(1, 10), src);
  # 1 + 2 + ... + 9 = 45
  print(concat("pipeline total = ", int_to_string(total)));
}
