# Bounded-buffer style staged pipeline (ISSUE 6 example family).
#
# `pipeline { stage A stage B ... }` lowers to the Pipe constructor
# (A |> B |> ...): each stage runs as its own future and implicitly
# touches its predecessor before finishing, so stage k+1 cannot complete
# before stage k — the classic producer/filter/consumer buffer handoff.
# Deadlock-free: the implicit touch chain always points backwards.

fun main() {
  pipeline {
    stage { print("produce: fill slot"); }
    stage { print("filter: transform slot"); }
    stage { print("consume: drain slot"); }
  }
  print("buffer drained");
}
