# FibDL (paper §5, example 2) — the Fibonacci program with one touch
# altered to create a deadlock.
#
# In fib_stage, the fib(k-2) future `prev2` is touched BEFORE the thread
# that would spawn it (the fib(k-1) stage) exists. The touch blocks
# forever: deadlock situation (1) of the paper, which closes a cycle in
# the dependency graph once the spawn is recorded later in program order.

fun fib_stage(k: int, out: future[int]) -> int {
  if k <= 2 {
    spawn out { return 1; }
    return 1;
  } else {
    let prev2 = new_future[int]();
    # BUG (deliberate): prev2 is spawned by out's thread, which has not
    # been spawned yet — this touch can never be satisfied.
    let f2 = touch(prev2);
    spawn out { return fib_stage(k - 1, prev2); }
    return touch(out) + f2;
  }
}

fun main() {
  let top = new_future[int]();
  let prev = new_future[int]();
  spawn top { return fib_stage(8, prev); }
  let f8 = touch(top);
  print(concat("fib(8) = ", int_to_string(f8)));
}
