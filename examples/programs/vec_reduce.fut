# Fan-in reducer over a future family (ISSUE 6 example family).
#
# `spawn_vec` creates a family of worker futures with one body;
# `touch_all` joins the whole family in index order and yields the list
# of results, which a plain recursive fold then reduces. The inferred
# graph type uses the collection constructors directly:
#   main : . new fs. (vec[fs; 4]. ...) ; touchall[fs; 4] ; ...
# Deadlock-free: every member is spawned before any is touched.

fun sum(xs: list[int]) -> int {
  if length(xs) == 0 {
    return 0;
  } else {
    return head(xs) + sum(tail(xs));
  }
}

fun main() {
  let fs = spawn_vec[int] 4 { return 10; }
  let parts = sum(touch_all(fs));
  print(concat("reduced = ", int_to_string(parts)));
}
