# Indexed touch into a future family (ISSUE 6 example family).
#
# `fs[i]` selects one member handle out of an fvec; touching it emits the
# indexed-touch constructor `touchidx[fs; n; i]` instead of joining the
# whole family. Only members 0 and 2 are ever joined — the analysis
# still accepts, because joining a subset of an already-spawned family
# cannot create a cycle.

fun main() {
  let fs = spawn_vec[int] 3 { return 5; }
  let first = touch(fs[0]);
  let last = touch(fs[2]);
  print(concat("first+last = ", int_to_string(first + last)));
}
