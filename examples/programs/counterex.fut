# Counterex. (paper §3 / §5, example 4) — the first member (m = 1) of
# the counterexample family that refutes GML's unrolling conjecture.
#
# Function g takes a future to spawn (a) and a future to touch (x). On
# each recursive call both roles are filled by the SAME freshly created
# future u, so the k-th call touches the future created at call k-1 —
# which is spawned only LATER in the same call, after the touch. The
# deadlock manifests at the 2nd recursive call (m + 1), one unrolling
# beyond what GML's detector explores: GML wrongly declares this program
# deadlock-free, while the paper's kind system rejects it.
#
# (The m = 2 member additionally defeats GML's 2-round type inference —
# paper footnote 3 — which this frontend reproduces; see
# counterexample_futlang(2) and the bench_counterexample harness.)

fun g(a: future[int], x: future[int]) {
  let u = new_future[int]();
  if rand() == 0 {
    return;
  } else {
    touch(x);
    spawn a { return 42; }
    g(u, u);
    return;
  }
}

fun main() {
  let u1 = new_future[int]();
  let u2 = new_future[int]();
  spawn u2 { return 42; }
  g(u1, u2);
}
