// Full-pipeline run over the paper's largest examples: the webserver and
// its deadlocking variant (§5, examples 5-6). Loads the FutLang sources
// from examples/programs/, compiles them, runs all three detectors and
// the interpreter, and prints a Table-1-style summary for the pair.
//
// Build & run:  ./build/examples/webserver_analysis

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/tj/join_policy.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void analyze(const std::string& name, const std::string& path) {
  using namespace gtdl;
  using Clock = std::chrono::steady_clock;

  const std::string source = read_file(path);
  const auto t0 = Clock::now();
  const CompiledProgram compiled = compile_futlang_or_throw(source);
  const auto t1 = Clock::now();
  const DeadlockVerdict ours =
      check_deadlock_freedom(compiled.inferred.program_gtype);
  const auto t2 = Clock::now();
  const GmlBaselineReport gml =
      gml_baseline_check(compiled.inferred.program_gtype);
  const auto t3 = Clock::now();

  const InterpResult run = interpret(compiled.program);
  const bool kj = check_known_joins(run.trace).valid;
  const bool tj = check_transitive_joins(run.trace).valid;

  const auto us = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration_cast<std::chrono::microseconds>(b - a)
        .count();
  };

  std::cout << "=== " << name << " ===\n"
            << "  source lines:        " << std::count(source.begin(),
                                                       source.end(), '\n')
            << "\n"
            << "  inference:           " << us(t0, t1) << " us\n"
            << "  our analysis:        "
            << (ours.deadlock_free ? "deadlock-free" : "possible deadlock")
            << "  (" << us(t1, t2) << " us)\n"
            << "  gml baseline:        "
            << (gml.deadlock_reported ? "reports deadlock"
                                      : "reports deadlock-free")
            << "  (" << gml.graphs_checked << " graphs, " << us(t2, t3)
            << " us)\n"
            << "  executed:            "
            << (run.deadlock ? "DEADLOCKED" : "completed") << "\n"
            << "  transitive joins:    " << (tj ? "valid" : "invalid")
            << "\n"
            << "  known joins:         " << (kj ? "valid" : "invalid")
            << "\n";
  if (!ours.deadlock_free) {
    std::cout << "  rejection reason:    "
              << ours.diags.all().front().message << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "examples/programs";
  if (argc > 1) dir = argv[1];
#ifdef GTDL_PROGRAMS_DIR
  if (argc <= 1) dir = GTDL_PROGRAMS_DIR;
#endif
  try {
    analyze("Webserver", dir + "/webserver.fut");
    analyze("WebserverDL", dir + "/webserver_dl.fut");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what()
              << "\nhint: pass the examples/programs directory as argv[1]\n";
    return 1;
  }
  return 0;
}
