// The paper's Fig. 1 workload: a generic parallel divide-and-conquer
// algorithm implemented with futures, shown three ways:
//
//   * statically — FutLang source through inference and the deadlock
//     kind system, demonstrating why "new pushing" (§5) matters;
//   * abstractly — the graph type's normalization at small depths;
//   * concretely — a real parallel mergesort-style sum on the threaded
//     futures runtime.
//
// Build & run:  ./build/examples/divide_and_conquer

#include <iostream>
#include <numeric>
#include <vector>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/runtime/futures.hpp"

namespace {

constexpr const char* kSource = R"(
# Fig. 1 of the paper, instantiated for summing 1..n.
fun divide_and_conquer(lo: int, hi: int) -> int {
  if hi - lo <= 2 {
    # base_case: small ranges sum sequentially
    if hi - lo == 1 {
      return lo;
    } else {
      return lo + lo + 1;
    }
  } else {
    let mid = lo + (hi - lo) / 2;
    let h = new_future[int]();
    spawn h { return divide_and_conquer(lo, mid); }
    let right = divide_and_conquer(mid, hi);
    let left = touch(h);
    return left + right;
  }
}

fun main() {
  let total = divide_and_conquer(1, 65);
  print(concat("sum(1..64) = ", int_to_string(total)));
}
)";

// The same algorithm on the real runtime.
int parallel_sum(gtdl::FutureRuntime& rt, int lo, int hi) {
  if (hi - lo <= 8) {
    int total = 0;
    for (int i = lo; i < hi; ++i) total += i;
    return total;
  }
  const int mid = lo + (hi - lo) / 2;
  auto left = rt.new_future<int>("dac");
  left.spawn([&rt, lo, mid] { return parallel_sum(rt, lo, mid); });
  const int right = parallel_sum(rt, mid, hi);
  return left.touch() + right;
}

}  // namespace

int main() {
  using namespace gtdl;

  // --- static analysis ---
  const CompiledProgram compiled = compile_futlang_or_throw(kSource);
  const auto& info =
      compiled.inferred.functions.at(Symbol::intern("divide_and_conquer"));
  std::cout << "inferred graph type (GML hoists 'new' to the top):\n  "
            << to_string(info.gtype) << "\n";

  DetectOptions no_push;
  no_push.new_pushing = false;
  std::cout << "without new pushing: "
            << (check_deadlock_freedom(compiled.inferred.program_gtype,
                                       no_push)
                        .deadlock_free
                    ? "accepted"
                    : "REJECTED (false positive — the base case never "
                      "spawns u)")
            << "\n";
  const DeadlockVerdict pushed =
      check_deadlock_freedom(compiled.inferred.program_gtype);
  std::cout << "with new pushing:    "
            << (pushed.deadlock_free ? "accepted (deadlock-free)"
                                     : "rejected")
            << "\n  analyzed type: " << to_string(pushed.analyzed) << "\n";

  // --- the set-of-graphs semantics ---
  for (unsigned depth : {2u, 3u, 4u}) {
    const NormalizeResult norm =
        normalize(info.gtype, depth);
    std::cout << "Norm_" << depth << " contains " << norm.graphs.size()
              << " graph(s)";
    if (!norm.graphs.empty()) {
      std::cout << "; e.g. " << to_string(*norm.graphs.back());
    }
    std::cout << "\n";
  }

  // --- interpreted execution ---
  const InterpResult run = interpret(compiled.program);
  std::cout << "interpreter: " << run.output;

  // --- real parallel execution ---
  FutureRuntime rt;
  const int total = parallel_sum(rt, 1, 65);
  std::cout << "runtime parallel sum(1..64) = " << total
            << " (expected " << (64 * 65) / 2 << ", "
            << rt.stats().futures_spawned << " futures)\n";
  return 0;
}
