// The paper's title claim, demonstrated: the SAME analysis, which never
// sees source code, handles programs from two different languages — the
// imperative FutLang and the OCaml-flavoured MiniML — because both
// frontends emit the same graph-type IR. For the divide-and-conquer
// algorithm the two frontends infer alpha-EQUIVALENT types.
//
// Build & run:  ./build/examples/language_agnostic

#include <iostream>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/mml/driver.hpp"

namespace {

constexpr const char* kFutLang = R"(
fun dac(n: int) -> int {
  if n < 2 {
    return n;
  } else {
    let h = new_future[int]();
    spawn h { return dac(n - 1); }
    let right = dac(n - 2);
    let left = touch(h);
    return left + right;
  }
}
fun main() { let x = dac(16); }
)";

constexpr const char* kMiniMl = R"(
let rec dac (n : int) : int =
  if n < 2 then n
  else
    let h : int future = newfut () in
    spawn h (dac (n - 1));
    let right = dac (n - 2) in
    let left = touch h in
    left + right

let main () : unit =
  let x = dac 16 in
  ()
)";

}  // namespace

int main() {
  using namespace gtdl;

  const CompiledProgram futlang = compile_futlang_or_throw(kFutLang);
  const mml::CompiledMml miniml = mml::compile_mml_or_throw(kMiniMl);

  const GTypePtr from_futlang =
      futlang.inferred.functions.at(Symbol::intern("dac")).gtype;
  const GTypePtr from_miniml =
      miniml.inferred.functions.at(Symbol::intern("dac")).gtype;

  std::cout << "FutLang source (imperative):\n" << kFutLang
            << "\nMiniML source (functional):\n" << kMiniMl << "\n";
  std::cout << "graph type from FutLang: " << to_string(from_futlang)
            << "\ngraph type from MiniML:  " << to_string(from_miniml)
            << "\nalpha-equivalent: "
            << (alpha_equal(*from_futlang, *from_miniml) ? "YES" : "no")
            << "\n";

  for (const auto& [label, g] :
       {std::pair<const char*, GTypePtr>{"FutLang",
                                         futlang.inferred.program_gtype},
        std::pair<const char*, GTypePtr>{"MiniML",
                                         miniml.inferred.program_gtype}}) {
    const DeadlockVerdict verdict = check_deadlock_freedom(g);
    std::cout << "detector on the " << label << " program: "
              << (verdict.deadlock_free ? "deadlock-free" : "rejected")
              << "\n";
  }
  std::cout << "(the detector consumed only graph types; it cannot tell "
               "the languages apart)\n";
  return 0;
}
