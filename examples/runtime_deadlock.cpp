// Dynamic deadlock handling on the real threaded runtime, side by side:
//
//   1. detection  — the waits-for registry lets a genuine cross-touch
//      deadlock happen, detects the cycle, and poisons it so every
//      waiter gets a DeadlockError instead of hanging forever;
//   2. avoidance  — the online Transitive Joins policy refuses the
//      dangerous touch before it can block (Voss et al., PPoPP'19);
//   3. precision  — the same deadlock-FREE grandchild-join program
//      (the Fibonacci shape of Table 1) runs fine under TJ but is
//      rejected by the stricter Known Joins policy.
//
// Build & run:  ./build/examples/runtime_deadlock

#include <iostream>

#include "gtdl/runtime/futures.hpp"

namespace {

using namespace gtdl;

void detection_demo() {
  std::cout << "--- 1. detection (no policy) ---\n";
  FutureRuntime rt;
  auto a = rt.new_future<int>("a");
  auto b = rt.new_future<int>("b");
  a.spawn([b]() mutable { return b.touch(); });
  b.spawn([a]() mutable { return a.touch(); });
  try {
    std::cout << "a = " << a.touch() << "\n";
  } catch (const DeadlockError& e) {
    std::cout << "caught: " << e.what() << "\n";
  }
}

void avoidance_demo() {
  std::cout << "--- 2. avoidance (transitive joins policy) ---\n";
  RuntimeOptions options;
  options.policy = RuntimePolicy::kTransitiveJoins;
  FutureRuntime rt(options);
  auto a = rt.new_future<int>("a");
  auto b = rt.new_future<int>("b");
  // a's body will try to touch b, which a has no permission to join
  // (b is forked after a): the policy rejects the touch up front, so the
  // thread never blocks and no deadlock can form.
  a.spawn([b]() mutable { return b.touch(); });
  b.spawn([] { return 7; });
  try {
    std::cout << "a = " << a.touch() << "\n";
  } catch (const DeadlockError& e) {
    std::cout << "caught (policy fired inside a's body): " << e.what()
              << "\n";
  }
  std::cout << "b = " << b.touch() << " (unaffected)\n";
}

// The Fibonacci chain shape: thread k spawns thread k-1, which spawns
// thread k-2; thread k touches BOTH. The k-2 touch is a grandchild join.
int chain(FutureRuntime& rt, int k, FutureHandle<int> out) {
  if (k <= 2) {
    out.spawn([] { return 1; });
    return 1;
  }
  auto prev2 = rt.new_future<int>("fib");
  out.spawn([&rt, k, prev2]() mutable { return chain(rt, k - 1, prev2); });
  return out.touch() + prev2.touch();  // second touch: grandchild join
}

void precision_demo(RuntimePolicy policy, const char* name) {
  std::cout << "--- 3. precision: fibonacci chain under " << name
            << " ---\n";
  RuntimeOptions options;
  options.policy = policy;
  FutureRuntime rt(options);
  auto top = rt.new_future<int>("fib");
  auto prev = rt.new_future<int>("fib");
  top.spawn([&rt, prev]() mutable { return chain(rt, 8, prev); });
  try {
    const int result = top.touch();
    std::cout << "fib(8) = " << result << "\n";
  } catch (const DeadlockError& e) {
    std::cout << "rejected: " << e.what() << "\n";
  } catch (const PolicyViolationError& e) {
    std::cout << "rejected: " << e.what() << "\n";
  }
}

}  // namespace

int main() {
  detection_demo();
  avoidance_demo();
  precision_demo(RuntimePolicy::kTransitiveJoins, "transitive joins");
  precision_demo(RuntimePolicy::kKnownJoins, "known joins");
  return 0;
}
