// Pipelining with futures (Blelloch & Reid-Miller style; GML's
// motivating example and §5's Pipeline benchmark), upgraded to the
// collection-aware constructors: the surface programs use the
// `pipeline { stage ... }` and `spawn_vec`/`touch_all` forms (lowered to
// the Pipe / VecSpawn / TouchAll graph-type constructors), and the
// runtime half drives a whole future family through the vector-spawn
// helpers instead of hand-rolled loops.
//
// Every static verdict is asserted, not just printed: the example exits
// non-zero if the analyzer disagrees with the expected outcome.
//
// Build & run:  ./build/examples/pipeline_example

#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/runtime/futures.hpp"

namespace {

// The staged pipeline in the new surface syntax: each `stage` runs as
// its own future and implicitly touches its predecessor, i.e. the Pipe
// constructor G1 |> G2 |> G3.
constexpr const char* kStagedPipeline = R"(
fun main() {
  pipeline {
    stage { print("produce"); }
    stage { print("transform"); }
    stage { print("consume"); }
  }
}
)";

// A worker family spawned with one body and joined as a unit:
// VecSpawn / TouchAll in the graph type.
constexpr const char* kFamilyPipeline = R"(
fun sum(xs: list[int]) -> int {
  if length(xs) == 0 { return 0; }
  else { return head(xs) + sum(tail(xs)); }
}
fun main() {
  let fs = spawn_vec[int] 8 { return 4; }
  print(concat("family total = ", int_to_string(sum(touch_all(fs)))));
}
)";

// Broken variant: stage 1 touches a future that is only spawned after
// the pipeline — the touch is not provably after its spawn, so the kind
// system rejects the Pipe graph.
constexpr const char* kBrokenPipeline = R"(
fun main() {
  let late = new_future[int]();
  pipeline {
    stage { print(int_to_string(touch(late))); }
    stage { print("never reached"); }
  }
  spawn late { return 7; }
}
)";

// Compiles `source` and asserts the analyzer's verdict matches
// `expect_deadlock_free`; exits the process on disagreement.
void expect_verdict(const char* name, const char* source,
                    bool expect_deadlock_free) {
  const gtdl::CompiledProgram compiled =
      gtdl::compile_futlang_or_throw(source);
  const gtdl::DeadlockVerdict verdict =
      gtdl::check_deadlock_freedom(compiled.inferred.program_gtype);
  std::cout << name << ": "
            << (verdict.deadlock_free ? "accepted (deadlock-free)"
                                      : "rejected")
            << "\n";
  if (verdict.deadlock_free != expect_deadlock_free) {
    std::cerr << "FAIL: expected "
              << (expect_deadlock_free ? "accept" : "reject") << " for "
              << name << "\n"
              << verdict.diags.render();
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace gtdl;

  // --- static verdicts (asserted) ---
  expect_verdict("staged pipeline", kStagedPipeline, true);
  expect_verdict("family pipeline", kFamilyPipeline, true);
  expect_verdict("broken pipeline", kBrokenPipeline, false);

  // --- the real thing: a future family on the threaded runtime ---
  FutureRuntime rt;
  constexpr std::size_t kWidth = 32;
  auto family = new_future_vec<int>(rt, kWidth, "stage");
  // One body parameterized by the member index, exactly like the
  // surface `spawn_vec` form (member k contributes k+1).
  spawn_vec(family, [](std::size_t k) { return static_cast<int>(k) + 1; });
  const std::vector<int> values = touch_all(family);
  const int total = std::accumulate(values.begin(), values.end(), 0);
  const int expected = static_cast<int>(kWidth * (kWidth + 1)) / 2;
  std::cout << "runtime family total = " << total << " (expected "
            << expected << ")\n";
  if (total != expected) {
    std::cerr << "FAIL: wrong family total\n";
    return 1;
  }

  // And a sabotaged family on real threads: member 0 waits forward on
  // member 1 and vice versa; the waits-for detector poisons the cycle
  // instead of hanging.
  auto fwd = new_future_vec<int>(rt, 2, "fwd");
  auto b = fwd[1];
  auto a = fwd[0];
  fwd[0].spawn([b]() mutable { return b.touch(); });
  fwd[1].spawn([a]() mutable { return a.touch(); });
  try {
    (void)fwd[0].touch();
    std::cerr << "FAIL: forward family completed\n";
    return 1;
  } catch (const DeadlockError& e) {
    std::cout << "runtime detector: " << e.what() << "\n";
  }
  return 0;
}
