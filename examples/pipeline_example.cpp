// Pipelining with futures (Blelloch & Reid-Miller style; GML's
// motivating example and §5's Pipeline benchmark): each stage's future
// touches the previous stage's future, forming a chain that overlaps the
// production of element k with the consumption of element k-1.
//
// This example runs the pipeline both through the static pipeline
// (FutLang -> graph type -> verdict) and on the real threaded runtime —
// including a *sabotaged* variant whose stages touch forward instead of
// backward, which the static analysis rejects and the runtime's
// waits-for detector catches as a live deadlock.
//
// Build & run:  ./build/examples/pipeline_example

#include <iostream>
#include <vector>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/runtime/futures.hpp"

namespace {

constexpr const char* kPipeline = R"(
fun pipe(xs: list[int], prev: future[int]) -> int {
  if length(xs) == 0 {
    return touch(prev);
  } else {
    let next = new_future[int]();
    spawn next { return touch(prev) + head(xs); }
    return pipe(tail(xs), next);
  }
}
fun main() {
  let src = new_future[int]();
  spawn src { return 0; }
  print(concat("total = ", int_to_string(pipe(range(1, 33), src))));
}
)";

// Broken variant: the head of the chain is touched although no stage is
// ever spawned into it — every stage then waits on a handle that can
// never be filled. The kind system rejects it because the touch argument
// is not provably spawned.
constexpr const char* kBrokenPipeline = R"(
fun pipe(xs: list[int], ahead: future[int]) -> int {
  if length(xs) == 0 {
    return 0;
  } else {
    let upstream = touch(ahead);
    let mine = new_future[int]();
    spawn mine { return upstream + head(xs); }
    let rest = pipe(tail(xs), mine);
    return rest + touch(mine);
  }
}
fun main() {
  let first = new_future[int]();
  let total = pipe(range(1, 9), first);
  print(int_to_string(total));
}
)";

}  // namespace

int main() {
  using namespace gtdl;

  // --- static verdicts ---
  const CompiledProgram ok = compile_futlang_or_throw(kPipeline);
  std::cout << "pipeline:        "
            << (check_deadlock_freedom(ok.inferred.program_gtype)
                        .deadlock_free
                    ? "accepted (deadlock-free)"
                    : "rejected")
            << "\n";

  const CompiledProgram broken = compile_futlang_or_throw(kBrokenPipeline);
  const DeadlockVerdict broken_verdict =
      check_deadlock_freedom(broken.inferred.program_gtype);
  std::cout << "broken pipeline: "
            << (broken_verdict.deadlock_free ? "accepted"
                                             : "rejected (as it should be)")
            << "\n" << broken_verdict.diags.render();

  // --- the real thing ---
  FutureRuntime rt;
  constexpr int kStages = 32;
  std::vector<FutureHandle<int>> stages;
  stages.reserve(kStages + 1);
  stages.push_back(rt.new_future<int>("stage"));
  stages.back().spawn([] { return 0; });
  for (int k = 1; k <= kStages; ++k) {
    auto prev = stages.back();
    stages.push_back(rt.new_future<int>("stage"));
    stages.back().spawn([prev, k]() mutable { return prev.touch() + k; });
  }
  std::cout << "runtime pipeline total = " << stages.back().touch()
            << " (expected " << (kStages * (kStages + 1)) / 2 << ")\n";

  // And the sabotaged version on real threads: the detector poisons the
  // cycle instead of hanging.
  auto a = rt.new_future<int>("fwd_a");
  auto b = rt.new_future<int>("fwd_b");
  a.spawn([b]() mutable { return b.touch(); });
  b.spawn([a]() mutable { return a.touch(); });
  try {
    (void)a.touch();
    std::cout << "unexpected: forward chain completed\n";
  } catch (const DeadlockError& e) {
    std::cout << "runtime detector: " << e.what() << "\n";
  }
  return 0;
}
